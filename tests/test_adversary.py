"""Unit tests for the side-information adversary and Theorem 6.2."""

import pytest

from repro.analysis.adversary import Adversary, theorem62_threshold
from repro.core.ring import Ring, TokenUniverse


def ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), seq=seq)


class TestTheorem62:
    def test_threshold_value(self):
        # |r| = 4, most frequent HT appears twice: threshold = 2.
        universe = TokenUniverse({"a": "h1", "b": "h1", "c": "h2", "d": "h3"})
        r = ring("r", {"a", "b", "c", "d"})
        assert theorem62_threshold(r, universe) == 2

    def test_homogeneous_ring_has_zero_threshold(self):
        universe = TokenUniverse({"a": "h1", "b": "h1"})
        r = ring("r", {"a", "b"})
        assert theorem62_threshold(r, universe) == 0

    def test_fully_diverse_ring(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3"})
        r = ring("r", {"a", "b", "c"})
        assert theorem62_threshold(r, universe) == 2


class TestAdversary:
    def setup_method(self):
        self.universe = TokenUniverse(
            {"a": "h1", "b": "h2", "c": "h2", "d": "h3"}
        )
        self.r1 = ring("r1", {"a", "b"})
        self.r2 = ring("r2", {"a", "c"})
        self.rings = [self.r1, self.r2]

    def test_learn_and_size(self):
        adversary = Adversary(self.universe)
        adversary.learn("r1", "a")
        assert adversary.side_information_size == 1

    def test_contradictory_learning_rejected(self):
        adversary = Adversary(self.universe)
        adversary.learn("r1", "a")
        with pytest.raises(ValueError):
            adversary.learn("r1", "b")

    def test_relearning_same_pair_ok(self):
        adversary = Adversary(self.universe)
        adversary.learn("r1", "a")
        adversary.learn("r1", "a")
        assert adversary.side_information_size == 1

    def test_inferred_pairs_excludes_known(self):
        adversary = Adversary(self.universe)
        adversary.learn("r1", "a")
        inferred = adversary.inferred_pairs(self.rings)
        assert "r1" not in inferred
        assert inferred == {"r2": "c"}

    def test_no_side_information_no_inference(self):
        adversary = Adversary(self.universe)
        assert adversary.inferred_pairs(self.rings) == {}

    def test_can_confirm_ht_after_learning(self):
        adversary = Adversary(self.universe)
        assert not adversary.can_confirm_ht(self.r2, self.rings)
        adversary.learn("r1", "a")
        assert adversary.can_confirm_ht(self.r2, self.rings)

    def test_theorem62_safety_check(self):
        adversary = Adversary(self.universe)
        # r1: |r|=2, q_M=1 -> threshold 1; empty SI is safe.
        assert adversary.is_safe_by_theorem62(self.r1)
        adversary.learn("r2", "c")
        assert not adversary.is_safe_by_theorem62(self.r1)

    def test_theorem62_guarantee_holds(self):
        # While |SI| < threshold, the HT is genuinely unconfirmed.
        adversary = Adversary(self.universe)
        for target in self.rings:
            if adversary.is_safe_by_theorem62(target):
                assert not adversary.can_confirm_ht(target, self.rings)
