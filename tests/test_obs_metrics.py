"""Tests for repro.obs.metrics: recorder, snapshots, merge, summary."""

import json

from repro.obs import metrics
from repro.obs.clock import ManualClock, wall_clock


class TestMemoryRecorder:
    def test_counters_accumulate(self):
        rec = metrics.MemoryRecorder()
        rec.count("bfs.candidates")
        rec.count("bfs.candidates")
        rec.count("bfs.candidates", 3)
        assert rec.counters == {"bfs.candidates": 5}

    def test_gauges_last_write_wins(self):
        rec = metrics.MemoryRecorder()
        rec.gauge("bfs.deadline_margin_s", 1.5)
        rec.gauge("bfs.deadline_margin_s", -0.25)
        assert rec.gauges == {"bfs.deadline_margin_s": -0.25}

    def test_histograms_keep_streaming_aggregates(self):
        rec = metrics.MemoryRecorder()
        for value in (2.0, 5.0, 3.0):
            rec.observe("bfs.select_s", value)
        hist = rec.histograms["bfs.select_s"]
        assert hist == {"count": 3, "sum": 10.0, "min": 2.0, "max": 5.0}

    def test_snapshot_is_json_ready_and_detached(self):
        rec = metrics.MemoryRecorder()
        rec.count("b")
        rec.count("a")
        rec.observe("h", 1.0)
        snap = rec.snapshot()
        json.dumps(snap)  # must serialize as-is
        assert list(snap["counters"]) == ["a", "b"]
        rec.count("a")
        rec.observe("h", 9.0)
        assert snap["counters"]["a"] == 1
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_snapshot_combines_all_kinds(self):
        left = metrics.MemoryRecorder()
        left.count("c", 2)
        left.gauge("g", 1.0)
        left.observe("h", 4.0)
        right = metrics.MemoryRecorder()
        right.count("c", 3)
        right.count("only_right")
        right.gauge("g", 7.0)
        right.observe("h", 1.0)
        left.merge_snapshot(right.snapshot())
        assert left.counters == {"c": 5, "only_right": 1}
        assert left.gauges == {"g": 7.0}
        assert left.histograms["h"] == {
            "count": 2, "sum": 5.0, "min": 1.0, "max": 4.0,
        }

    def test_merge_order_is_deterministic(self):
        snaps = []
        for value in (1, 2, 3):
            rec = metrics.MemoryRecorder()
            rec.count("c", value)
            rec.gauge("g", float(value))
            snaps.append(rec.snapshot())
        a = metrics.MemoryRecorder()
        b = metrics.MemoryRecorder()
        for snap in snaps:
            a.merge_snapshot(snap)
            b.merge_snapshot(snap)
        assert a.snapshot() == b.snapshot()


class TestActiveSlot:
    def test_disabled_by_default(self):
        assert metrics.active() is None

    def test_recording_installs_and_restores(self):
        assert metrics.active() is None
        with metrics.recording() as rec:
            assert metrics.active() is rec
            assert isinstance(rec, metrics.MemoryRecorder)
        assert metrics.active() is None

    def test_recording_accepts_existing_recorder(self):
        mine = metrics.MemoryRecorder()
        with metrics.recording(mine) as rec:
            assert rec is mine

    def test_nested_recording_restores_previous(self):
        with metrics.recording() as outer:
            with metrics.recording() as inner:
                assert metrics.active() is inner
            assert metrics.active() is outer

    def test_recording_restores_on_exception(self):
        try:
            with metrics.recording():
                raise ValueError("boom")
        except ValueError:
            pass
        assert metrics.active() is None

    def test_convenience_wrappers_route_to_active(self):
        metrics.count("ignored")  # disabled: must be a silent no-op
        metrics.gauge("ignored", 1.0)
        metrics.observe("ignored", 1.0)
        with metrics.recording() as rec:
            metrics.count("c", 2)
            metrics.gauge("g", 3.0)
            metrics.observe("h", 4.0)
        assert rec.counters == {"c": 2}
        assert rec.gauges == {"g": 3.0}
        assert rec.histograms["h"]["count"] == 1


class TestFormatSummary:
    def test_empty_snapshot_renders(self):
        text = metrics.format_summary({})
        assert "== metrics ==" in text
        assert "n/a" in text

    def test_derived_lines_and_raw_dump(self):
        rec = metrics.MemoryRecorder()
        rec.count("cache.worlds_hits", 3)
        rec.count("cache.worlds_misses", 1)
        rec.count("bfs.candidates", 500)
        rec.observe("bfs.select_s", 0.5)
        rec.gauge("bfs.deadline_margin_s", -0.1)
        text = metrics.format_summary(rec.snapshot())
        assert "cache worlds hit rate" in text
        assert "75.0% (3/4)" in text
        assert "candidates/sec" in text
        assert "1000.0" in text
        assert "bfs.candidates" in text  # raw counters are not hidden
        assert "gauges:" in text


class TestClock:
    def test_wall_clock_is_time_time(self):
        import time

        assert wall_clock is time.time

    def test_manual_clock_auto_advances(self):
        clock = ManualClock(start=10.0, step=2.0)
        assert [clock(), clock(), clock()] == [10.0, 12.0, 14.0]

    def test_manual_clock_advance_skips_without_reading(self):
        clock = ManualClock()
        clock.advance(100.0)
        assert clock() == 100.0
