"""Unit tests for the requirement-relaxation policy (Section 4)."""

import pytest

from repro.core.modules import ModuleUniverse
from repro.core.problem import InfeasibleError
from repro.core.relaxation import (
    relaxation_schedule,
    select_with_relaxation,
)
from repro.core.ring import TokenUniverse


class TestSchedule:
    def test_level_zero_is_original(self):
        steps = list(relaxation_schedule(0.6, 5, max_level=4))
        assert steps[0].c == 0.6
        assert steps[0].ell == 5
        assert steps[0].is_original

    def test_alternates_c_and_ell(self):
        steps = list(relaxation_schedule(1.0, 5, c_factor=2.0, max_level=4))
        assert steps[1].c == 2.0 and steps[1].ell == 5
        assert steps[2].c == 2.0 and steps[2].ell == 4
        assert steps[3].c == 4.0 and steps[3].ell == 4

    def test_ell_floors_at_one(self):
        steps = list(relaxation_schedule(1.0, 1, max_level=6))
        assert all(step.ell >= 1 for step in steps)

    def test_monotone_weakening(self):
        steps = list(relaxation_schedule(0.5, 6, max_level=8))
        for earlier, later in zip(steps, steps[1:]):
            assert later.c >= earlier.c
            assert later.ell <= earlier.ell

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            list(relaxation_schedule(0, 3))
        with pytest.raises(ValueError):
            list(relaxation_schedule(1.0, 3, c_factor=1.0))


class TestSelectWithRelaxation:
    def setup_method(self):
        # Two HTs only: l >= 3 is unsatisfiable, l = 2 needs c > 1.
        self.universe = TokenUniverse(
            {"a": "h1", "b": "h2", "c": "h1", "d": "h2"}
        )
        self.modules = ModuleUniverse(self.universe, [])

    def test_no_relaxation_when_feasible(self):
        result, step = select_with_relaxation(
            self.modules, "a", c=2.0, ell=2, algorithm="progressive"
        )
        assert step.is_original
        assert "a" in result.tokens

    def test_relaxes_until_feasible(self):
        # l = 3 impossible (2 HTs); the ladder must drop l.
        result, step = select_with_relaxation(
            self.modules, "a", c=2.0, ell=3, algorithm="progressive"
        )
        assert step.level > 0
        assert step.ell <= 2
        assert "a" in result.tokens

    def test_exhausted_schedule_raises(self):
        homogeneous = ModuleUniverse(
            TokenUniverse({"x": "h1", "y": "h1"}), []
        )
        with pytest.raises(InfeasibleError):
            select_with_relaxation(
                homogeneous, "x", c=0.5, ell=2, max_level=2,
            )

    def test_max_size_keeps_relaxing(self):
        # A strict size wish keeps walking the ladder; (1.5, 2) yields
        # a 2-token ring, so max_size=1 forces relaxing down to l=1
        # where a degenerate single-token ring satisfies the wish.
        result, step = select_with_relaxation(
            self.modules, "a", c=1.5, ell=2, max_size=1
        )
        assert result.size == 1
        assert step.level > 0
        assert step.ell == 1

    def test_oversized_fallback_when_wish_impossible(self):
        # With the ladder capped before l can drop to 1, every rung
        # keeps l = 2 and yields 2-token rings; the size-1 wish is
        # unattainable, so the best oversized ring comes back.
        result, step = select_with_relaxation(
            self.modules,
            "a",
            c=1.5,
            ell=2,
            max_size=1,
            max_level=1,
        )
        assert result.size == 2
        assert step.ell == 2

    def test_selector_object_accepted(self):
        from repro.core.progressive import progressive_select

        result, step = select_with_relaxation(
            self.modules, "a", c=2.0, ell=2, algorithm=progressive_select
        )
        assert "a" in result.tokens
