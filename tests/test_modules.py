"""Unit tests for the practical configurations (Section 6.1)."""

import pytest

from repro.core.dtrs import get_dtrss
from repro.core.modules import (
    ModuleUniverse,
    find_fresh_tokens,
    find_super_rings,
    is_superset_or_disjoint,
    ring_is_recursive_diverse_config,
    second_config_ell,
    subset_count,
    theorem61_dtrs_token_sets,
)
from repro.core.ring import Ring, TokenUniverse


def ring(rid, tokens, seq=0, c=1.0, ell=1):
    return Ring(rid=rid, tokens=frozenset(tokens), c=c, ell=ell, seq=seq)


class TestSuperRings:
    def test_paper_definition_7_example(self):
        # r1 proposed at pi, r2 (superset) at pi+1, r3 disjoint at pi+2:
        # r2 and r3 are super RSs; r1 is not; v of r2 is 2.
        r1 = ring("r1", {"t1", "t2"}, seq=0)
        r2 = ring("r2", {"t1", "t2", "t3"}, seq=1)
        r3 = ring("r3", {"t4", "t5"}, seq=2)
        supers = find_super_rings([r1, r2, r3])
        assert {r.rid for r in supers} == {"r2", "r3"}
        assert subset_count(r2, [r1, r2, r3]) == 2

    def test_earlier_superset_does_not_disqualify(self):
        # Definition 7 only looks at rings proposed *after* r_i.
        big = ring("big", {"a", "b", "c"}, seq=0)
        small = ring("small", {"a", "b"}, seq=1)
        supers = find_super_rings([big, small])
        assert {r.rid for r in supers} == {"big", "small"}

    def test_identical_rings_are_both_super(self):
        # Equal token sets are not strict supersets of each other.
        r1 = ring("r1", {"a"}, seq=0)
        r2 = ring("r2", {"a"}, seq=1)
        assert {r.rid for r in find_super_rings([r1, r2])} == {"r1", "r2"}

    def test_subset_count_includes_self(self):
        r = ring("r", {"a", "b"})
        assert subset_count(r, [r]) == 1


class TestFreshTokens:
    def test_uncovered_tokens_found(self):
        rings = [ring("r1", {"a", "b"})]
        assert find_fresh_tokens({"a", "b", "c", "d"}, rings) == ["c", "d"]

    def test_no_rings_all_fresh(self):
        assert find_fresh_tokens({"a", "b"}, []) == ["a", "b"]

    def test_everything_covered(self):
        assert find_fresh_tokens({"a"}, [ring("r", {"a"})]) == []


class TestModuleUniverse:
    def setup_method(self):
        self.universe = TokenUniverse(
            {"a": "h1", "b": "h2", "c": "h3", "d": "h4", "e": "h5"}
        )
        self.r1 = ring("r1", {"a", "b"}, seq=0)
        self.r2 = ring("r2", {"a", "b", "c"}, seq=1)
        self.modules = ModuleUniverse(self.universe, [self.r1, self.r2])

    def test_module_count(self):
        # One super RS (r2; r1 is covered) and two fresh tokens (d, e).
        super_modules = [m for m in self.modules.modules if m.is_super]
        fresh_modules = [m for m in self.modules.modules if not m.is_super]
        assert {m.source_rid for m in super_modules} == {"r2"}
        assert {next(iter(m.tokens)) for m in fresh_modules} == {"d", "e"}

    def test_module_of_ring_token(self):
        assert self.modules.module_of("a").source_rid == "r2"

    def test_module_of_fresh_token(self):
        module = self.modules.module_of("d")
        assert not module.is_super
        assert module.tokens == frozenset({"d"})

    def test_module_of_unknown_token(self):
        with pytest.raises(KeyError):
            self.modules.module_of("zz")

    def test_others_excludes_module(self):
        anchor = self.modules.module_of("a")
        others = self.modules.others(anchor)
        assert anchor.mid not in {m.mid for m in others}
        assert len(others) == len(self.modules.modules) - 1

    def test_super_of_nested_ring(self):
        assert self.modules.super_of(self.r1).rid == "r2"
        assert self.modules.super_of(self.r2).rid == "r2"

    def test_subset_count_of(self):
        assert self.modules.subset_count_of("r2") == 2
        assert self.modules.subset_count_of("r1") == 1

    def test_ht_counts_helper(self):
        module = self.modules.module_of("a")
        assert module.ht_counts(self.universe) == {"h1": 1, "h2": 1, "h3": 1}


class TestSupersetOrDisjoint:
    def test_superset_ok(self):
        r1 = ring("r1", {"a", "b"})
        assert is_superset_or_disjoint(frozenset({"a", "b", "c"}), [r1])

    def test_disjoint_ok(self):
        r1 = ring("r1", {"a", "b"})
        assert is_superset_or_disjoint(frozenset({"c", "d"}), [r1])

    def test_partial_overlap_rejected(self):
        r1 = ring("r1", {"a", "b"})
        assert not is_superset_or_disjoint(frozenset({"b", "c"}), [r1])

    def test_empty_ring_set_ok(self):
        assert is_superset_or_disjoint(frozenset({"a"}), [])


class TestTheorem61:
    def test_matches_exact_dtrs_token_sets(self):
        # Configuration-1 world: new rings are supersets of old ones.
        universe = TokenUniverse(
            {"a": "h1", "b": "h1", "c": "h2", "d": "h3", "e": "h4"}
        )
        inner = ring("inner", {"a", "b", "c"}, seq=0)
        outer = ring("outer", {"a", "b", "c", "d"}, seq=1)
        modules = ModuleUniverse(universe, [inner, outer])

        predicted = {
            psi for _, psi in theorem61_dtrs_token_sets(inner, modules)
        }
        exact = {
            dtrs.tokens
            for dtrs in get_dtrss(inner, [inner, outer], universe)
            if dtrs.tokens
        }
        # Theorem 6.1 predicts the token sets of determining DTRSs.
        assert exact <= predicted or predicted <= exact or predicted == exact

    def test_low_subset_count_blocks_dtrs(self):
        # A lone super RS has v = 1 < |r| - |T~| + 1 for every minority
        # HT, so only HTs with multiplicity |r| (all tokens) can fire.
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3"})
        lone = ring("lone", {"a", "b", "c"}, seq=0)
        modules = ModuleUniverse(universe, [lone])
        assert theorem61_dtrs_token_sets(lone, modules) == []

    def test_full_subset_count_fires(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3"})
        base = ring("base", {"a", "b", "c"}, seq=0)
        dup1 = ring("dup1", {"a", "b", "c"}, seq=1)
        dup2 = ring("dup2", {"a", "b", "c"}, seq=2)
        modules = ModuleUniverse(universe, [base, dup1, dup2])
        # v = 3 >= 3 - 1 + 1 = 3: every HT yields a psi set.
        psis = theorem61_dtrs_token_sets(base, modules)
        assert len(psis) == 3
        for ht, psi in psis:
            assert psi == base.tokens - universe.tokens_of_ht(ht)


class TestConfigDiversityCheck:
    def test_passes_on_diverse_super_rs(self):
        universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h3"})
        r = ring("r", {"a", "b", "c"}, c=2.0, ell=2)
        modules = ModuleUniverse(universe, [r])
        assert ring_is_recursive_diverse_config(r, modules)

    def test_fails_on_homogeneous_ring(self):
        universe = TokenUniverse({"a": "h1", "b": "h1"})
        r = ring("r", {"a", "b"}, c=2.0, ell=2)
        modules = ModuleUniverse(universe, [r])
        assert not ring_is_recursive_diverse_config(r, modules)

    def test_explicit_requirement_overrides_claim(self):
        universe = TokenUniverse({"a": "h1", "b": "h2"})
        r = ring("r", {"a", "b"}, c=0.1, ell=5)
        modules = ModuleUniverse(universe, [r])
        assert ring_is_recursive_diverse_config(r, modules, c=2.0, ell=2)


class TestSecondConfig:
    def test_increments_ell(self):
        assert second_config_ell(1) == 2
        assert second_config_ell(40) == 41
