"""Deterministic worker event forwarding (ISSUE satellite: workers=2).

A parallel scan forwards per-candidate metrics snapshots from the pool
workers and folds them in submission order, truncated at the winner —
so every counter outside the documented scheduling-dependent set must
total exactly what a serial run records.  The trace of a parallel run
must still export valid, finish-ordered JSONL.
"""

import json
import random

from repro.core.bfs import bfs_select
from repro.core.problem import DamsInstance
from repro.core.ring import Ring, TokenUniverse
from repro.obs import events, metrics, trace

C = 5.0
ELL = 3
MAX_RINGS = 3


def _run_ladder(workers: int) -> metrics.MemoryRecorder:
    rng = random.Random(0)
    universe = TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(10)}" for i in range(20)}
    )
    rings: list[Ring] = []
    consumed: set[str] = set()
    with metrics.recording() as rec:
        for index in range(MAX_RINGS):
            free = sorted(universe.tokens - consumed)
            target = free[rng.randrange(len(free))]
            instance = DamsInstance(universe, list(rings), target, c=C, ell=ELL)
            result = bfs_select(instance, workers=workers)
            rings.append(
                Ring(
                    rid=f"r{index}",
                    tokens=result.ring.tokens,
                    c=C,
                    ell=ELL,
                    seq=result.ring.seq,
                )
            )
            consumed.add(target)
    return rec


def test_worker_counts_merge_to_serial_totals():
    serial = _run_ladder(workers=0)
    parallel = _run_ladder(workers=2)
    assert events.deterministic_view(parallel.counters) == (
        events.deterministic_view(serial.counters)
    )
    # The stripped names really were recorded (the view is not vacuous).
    assert "bfs.candidates" in events.deterministic_view(serial.counters)
    assert "cache.worlds_misses" in serial.counters


def test_deterministic_view_strips_only_scheduling_dependent():
    counters = {
        "bfs.candidates": 10,
        "cache.worlds_hits": 4,
        "cache.worlds_misses": 2,
        "worlds.built": 2,
        "worlds.enumerated": 8,
        "worlds.extended": 6,
        "dtrs.sweeps": 9,
    }
    view = events.deterministic_view(counters)
    assert view == {
        "bfs.candidates": 10,
        "worlds.extended": 6,
        "dtrs.sweeps": 9,
    }


def test_parallel_trace_exports_valid_ordered_jsonl(tmp_path):
    rng = random.Random(0)
    universe = TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(10)}" for i in range(20)}
    )
    target = sorted(universe.tokens)[rng.randrange(20)]
    instance = DamsInstance(universe, [], target, c=C, ell=ELL)
    path = tmp_path / "parallel.jsonl"
    with trace.tracing() as tracer:
        bfs_select(instance, workers=2)
    tracer.export_jsonl(path)
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records
    names = {record["name"] for record in records}
    assert "bfs.select" in names
    assert "bfs.chunk" in names  # the parallel path marked its chunks
    ends = [record["end"] for record in records]
    assert ends == sorted(ends)
    # Every parent referenced exists in the export.
    ids = {record["span_id"] for record in records}
    assert all(
        record["parent_id"] in ids
        for record in records
        if record["parent_id"] is not None
    )
