"""Disabled-recorder overhead guard (< 3% of the BFS baseline).

Direct before/after wall-clock comparison of two sub-second runs is
noise-bound, so the guard prices the instrumentation instead:

1. run the smallest complete bench ladder with observability disabled
   and measure its runtime ``T`` — every guard executes its disabled
   branch during this run;
2. rerun it recording, and read off how many times each guard site
   fired (the work is deterministic, so the counts transfer);
3. microbenchmark the cost ``c`` of the *most expensive* disabled
   guard (``events.enabled()`` — a call plus two global loads; the
   matcher's captured-recorder check is strictly cheaper);
4. assert ``G_upper * c < 3% of T`` with ``G_upper`` a deliberate
   overcount of the guard executions.

If instrumentation creeps into a hot loop without a cheap guard, the
fired-count explodes and this test trips long before users notice.
"""

import random
import time

from repro.core.bfs import bfs_select
from repro.core.problem import DamsInstance
from repro.core.ring import Ring, TokenUniverse
from repro.obs import events, metrics

C = 5.0
ELL = 4  # the bench's harder requirement: rungs 4-6 do real work
SEED = 3
MAX_RINGS = 6
OVERHEAD_BUDGET = 0.03


def _ladder() -> float:
    """The smallest complete bench workload; returns elapsed seconds."""
    rng = random.Random(SEED)
    universe = TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(10)}" for i in range(20)}
    )
    rings: list[Ring] = []
    consumed: set[str] = set()
    start = time.perf_counter()
    for index in range(MAX_RINGS):
        free = sorted(universe.tokens - consumed)
        target = free[rng.randrange(len(free))]
        instance = DamsInstance(universe, list(rings), target, c=C, ell=ELL)
        result = bfs_select(instance)
        rings.append(
            Ring(
                rid=f"r{index}",
                tokens=result.ring.tokens,
                c=C,
                ell=ELL,
                seq=result.ring.seq,
            )
        )
        consumed.add(target)
    return time.perf_counter() - start


def _price_disabled_guard(iterations: int = 200_000) -> float:
    """Per-call seconds of the disabled ``events.enabled()`` guard."""
    assert metrics.active() is None
    enabled = events.enabled
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(iterations):
            enabled()
        best = min(best, time.perf_counter() - start)
    return best / iterations


def test_disabled_observability_overhead_under_three_percent():
    baseline_s = _ladder()

    with metrics.recording() as rec:
        _ladder()
    counters = rec.counters

    # One enabled()/active() execution per firing of each guarded site;
    # spans, strata and slack are folded into a flat overcount.
    guard_fires = (
        counters["bfs.candidates"]
        + counters.get("matcher.built", 0)
        + counters.get("matcher.queries", 0)
        + counters.get("dtrs.sweeps", 0)
        + counters.get("worlds.built", 0)
        + counters.get("worlds.extended", 0)
        + counters.get("cache.worlds_hits", 0)
        + counters.get("cache.worlds_misses", 0)
        + counters.get("kernel.batches", 0)
        + counters.get("kernel.states", 0)
        + counters.get("kernel.candidates", 0)
        + 2_000
    )
    guard_upper = 2 * guard_fires  # headroom for uncounted cheap checks

    per_guard_s = _price_disabled_guard()
    priced_overhead_s = guard_upper * per_guard_s

    assert priced_overhead_s < OVERHEAD_BUDGET * baseline_s, (
        f"disabled obs guards priced at {priced_overhead_s * 1e3:.2f}ms "
        f"({guard_upper} fires x {per_guard_s * 1e9:.0f}ns) vs "
        f"{OVERHEAD_BUDGET:.0%} of the {baseline_s:.3f}s baseline"
    )
