"""Round-trip tests for dataset persistence."""

import json

import pytest

from repro.core.ring import Ring, TokenUniverse
from repro.data.monero import generate_monero_hour
from repro.data.persistence import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)


def small_dataset():
    universe = TokenUniverse({"a": "h1", "b": "h2", "c": "h1"})
    rings = [
        Ring("r1", frozenset({"a", "b"}), c=2.0, ell=2, seq=0),
        Ring("r2", frozenset({"c"}), c=1.0, ell=1, seq=1),
    ]
    return universe, rings


class TestDictRoundTrip:
    def test_lossless(self):
        universe, rings = small_dataset()
        payload = dataset_to_dict(universe, rings, {"note": "test"})
        restored_universe, restored_rings, metadata = dataset_from_dict(payload)
        assert restored_universe.tokens == universe.tokens
        assert all(
            restored_universe.ht_of(t) == universe.ht_of(t) for t in universe
        )
        assert restored_rings == rings
        assert metadata == {"note": "test"}

    def test_version_checked(self):
        universe, rings = small_dataset()
        payload = dataset_to_dict(universe, rings)
        payload["version"] = 99
        with pytest.raises(ValueError):
            dataset_from_dict(payload)

    def test_unknown_ring_tokens_rejected(self):
        universe, rings = small_dataset()
        payload = dataset_to_dict(universe, rings)
        payload["rings"][0]["tokens"].append("ghost")
        with pytest.raises(ValueError):
            dataset_from_dict(payload)


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        universe, rings = small_dataset()
        path = save_dataset(tmp_path / "ds.json", universe, rings, {"k": 1})
        restored_universe, restored_rings, metadata = load_dataset(path)
        assert restored_rings == rings
        assert metadata == {"k": 1}

    def test_monero_hour_round_trips(self, tmp_path):
        hour = generate_monero_hour(seed=2)
        path = save_dataset(
            tmp_path / "monero.json",
            hour.universe,
            hour.rings,
            {"seed": 2, "source": "generate_monero_hour"},
        )
        universe, rings, metadata = load_dataset(path)
        assert len(universe) == 633
        assert len(rings) == 57
        assert metadata["seed"] == 2

    def test_document_is_stable_json(self, tmp_path):
        universe, rings = small_dataset()
        path_a = save_dataset(tmp_path / "a.json", universe, rings)
        path_b = save_dataset(tmp_path / "b.json", universe, rings)
        assert json.loads(path_a.read_text()) == json.loads(path_b.read_text())
