"""Delta-mode epoch advance: warm across commits, byte-identical answers.

Three layers of pinning, mirroring the implementation layers:

* the incremental core structures equal their from-scratch rebuilds on
  randomized histories — :meth:`ModuleUniverse.extended` (Thm 6.1's
  superset-or-disjoint locality, with a rebuild fallback for
  configuration-1 violations) and :meth:`SolverCache.advance`
  (component-wise invalidation: entries keyed off components the new
  ring does not reach survive, object-identical);
* :meth:`ChainSnapshot.advance` carries warm state and drops exactly
  what a commit can affect (the memo always; untouched batch
  sub-snapshots never), leaving the old snapshot untouched for
  in-flight batches;
* a live ``epoch_mode="delta"`` :class:`SelectionService` answers a
  randomized commit/request interleaving byte-identically (modulo
  execution coordinates) to the default ``replace`` service, both
  unpartitioned and partitioned, while surfacing ``delta.*`` retention
  counters through ``stats``/``health``/``metrics``.
"""

from __future__ import annotations

import random
import sys
import threading

import pytest

from repro.core.modules import ModuleUniverse, is_superset_or_disjoint
from repro.core.perf.cache import SolverCache
from repro.core.perf.kernels import resolve_backend
from repro.core.ring import Ring, TokenUniverse
from repro.service import (
    EPOCH_MODES,
    EpochDelta,
    SelectionService,
    SelectRequest,
    ServiceConfig,
    ServiceState,
    TokenPartition,
)

C, ELL = 2.0, 2


def make_universe(tokens: int = 16, hts: int = 5, seed: int = 7) -> TokenUniverse:
    rng = random.Random(seed)
    return TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )


def random_history(
    rng: random.Random, tokens: list[str], count: int, config1_bias: float = 0.8
) -> list[Ring]:
    """A ring history, biased toward (but not limited to) configuration 1."""
    rings: list[Ring] = []
    for seq in range(count):
        members = _random_ring_tokens(rng, tokens, rings, config1_bias)
        rings.append(Ring(f"r{seq}", members, c=C, ell=ELL, seq=seq))
    return rings


def _random_ring_tokens(
    rng: random.Random,
    tokens: list[str],
    rings: list[Ring],
    config1_bias: float,
) -> frozenset[str]:
    if rings and rng.random() >= config1_bias:
        # Free-form: frequently overlaps-without-containing some ring.
        return frozenset(rng.sample(tokens, rng.randint(2, 5)))
    covered = set().union(*(r.tokens for r in rings)) if rings else set()
    fresh = [t for t in tokens if t not in covered]
    if rings and rng.random() < 0.5:
        # Superset of an existing ring plus some fresh tokens.
        base = set(rng.choice(rings).tokens)
        base.update(rng.sample(fresh, min(len(fresh), rng.randint(0, 2))))
        return frozenset(base)
    if len(fresh) >= 2:
        return frozenset(rng.sample(fresh, rng.randint(2, min(4, len(fresh)))))
    return frozenset(rng.sample(tokens, rng.randint(2, 4)))


# -- ModuleUniverse.extended ------------------------------------------------


def universe_fingerprint(modules: ModuleUniverse) -> dict:
    return {
        "super_rings": [r.rid for r in modules.super_rings],
        "fresh_tokens": list(modules.fresh_tokens),
        "modules": [m.mid for m in modules.modules],
        "module_of": {
            token: modules.module_of(token).mid for token in modules.universe.tokens
        },
        "subset_counts": {
            r.rid: modules.subset_count_of(r.rid) for r in modules.rings
        },
    }


def test_extended_matches_rebuild_randomized():
    universe = make_universe()
    tokens = sorted(universe.tokens)
    incremental_seen = rebuilt_seen = 0
    for trial in range(120):
        rng = random.Random(1000 + trial)
        rings = random_history(rng, tokens, rng.randint(0, 6))
        base = ModuleUniverse(universe, rings)
        ring = Ring(
            "new",
            _random_ring_tokens(rng, tokens, rings, config1_bias=0.7),
            c=C,
            ell=ELL,
            seq=len(rings),
        )
        extended, incremental = base.extended(ring)
        rebuilt = ModuleUniverse(universe, rings + [ring])
        assert universe_fingerprint(extended) == universe_fingerprint(rebuilt), (
            f"trial {trial}: extended decomposition diverged "
            f"(incremental={incremental})"
        )
        if incremental:
            incremental_seen += 1
            assert is_superset_or_disjoint(ring.tokens, rings)
        else:
            rebuilt_seen += 1
    # The bias must actually exercise both paths.
    assert incremental_seen > 20 and rebuilt_seen > 10


def test_extended_falls_back_on_stale_seq():
    universe = make_universe()
    tokens = sorted(universe.tokens)
    rings = [Ring("r0", frozenset(tokens[0:3]), c=C, ell=ELL, seq=5)]
    base = ModuleUniverse(universe, rings)
    # Disjoint (config 1 holds) but not newer than the history: the
    # Def 7 locality argument needs the ring to be later than everything.
    stale = Ring("new", frozenset(tokens[4:7]), c=C, ell=ELL, seq=5)
    extended, incremental = base.extended(stale)
    assert not incremental
    assert universe_fingerprint(extended) == universe_fingerprint(
        ModuleUniverse(universe, rings + [stale])
    )


def test_extended_falls_back_on_duplicate_rid():
    universe = make_universe()
    tokens = sorted(universe.tokens)
    rings = [
        Ring("r0", frozenset(tokens[0:2]), c=C, ell=ELL, seq=0),
        Ring("r1", frozenset(tokens[4:6]), c=C, ell=ELL, seq=1),
    ]
    base = ModuleUniverse(universe, rings)
    # Newer and disjoint (config 1 holds) but reusing a surviving super
    # RS's rid: the incremental path keys super-RS modules by "s:<rid>",
    # so taking it would alias r1's module slot to the new ring's tokens.
    dup = Ring("r1", frozenset(tokens[8:10]), c=C, ell=ELL, seq=2)
    extended, incremental = base.extended(dup)
    assert not incremental
    # The surviving super ring keeps its own tokens.
    assert extended.module_of(tokens[4]).tokens == frozenset(tokens[4:6])
    assert extended.module_of(tokens[8]).tokens == frozenset(tokens[8:10])


def test_extended_shares_surviving_modules():
    universe = make_universe()
    tokens = sorted(universe.tokens)
    rings = [
        Ring("r0", frozenset(tokens[0:3]), c=C, ell=ELL, seq=0),
        Ring("r1", frozenset(tokens[4:7]), c=C, ell=ELL, seq=1),
    ]
    base = ModuleUniverse(universe, rings)
    ring = Ring("new", frozenset(tokens[0:4]), c=C, ell=ELL, seq=2)
    extended, incremental = base.extended(ring)
    assert incremental
    # r1 is untouched: its Module object (not just its content) survives.
    assert extended.module_of(tokens[4]) is base.module_of(tokens[4])
    # r0 was swallowed by the superset: its tokens move to the new super.
    assert extended.module_of(tokens[0]).mid == "s:new"
    assert base.module_of(tokens[0]).mid == "s:r0"  # base untouched


# -- SolverCache.advance ----------------------------------------------------


def component_partition(cache: SolverCache) -> set[frozenset[int]]:
    return {
        frozenset(component.ring_indices)
        for component in cache._components
        if component.ring_indices
    }


def test_cache_advance_matches_fresh_build_randomized():
    universe = make_universe()
    tokens = sorted(universe.tokens)
    for trial in range(60):
        rng = random.Random(2000 + trial)
        rings = random_history(rng, tokens, rng.randint(1, 6), config1_bias=0.5)
        cache = SolverCache(universe, rings)
        # Warm a few worlds entries through the public path.
        for _ in range(3):
            probe = rng.sample(tokens, 2)
            cache.base_worlds(cache.related_key(probe))
        ring = Ring(
            "new",
            frozenset(rng.sample(tokens, rng.randint(2, 4))),
            c=C,
            ell=ELL,
            seq=len(rings),
        )
        advanced, report = cache.advance(ring)
        fresh = SolverCache(universe, rings + [ring])
        assert component_partition(advanced) == component_partition(fresh), (
            f"trial {trial}: advanced component partition diverged"
        )
        for probe in (rng.sample(tokens, 3) for _ in range(4)):
            key_a = advanced.related_key(probe)
            key_f = fresh.related_key(probe)
            assert [r.rid for r in advanced.related_rings(key_a)] == [
                r.rid for r in fresh.related_rings(key_f)
            ], f"trial {trial}: related closure diverged for {probe}"
        # Every retained entry is object-shared with the old cache and
        # still describes exactly its key's current closure.
        assert report.worlds_retained == len(advanced._worlds)
        for key, worlds in advanced._worlds.items():
            assert key.isdisjoint(report.touched_components)
            assert cache._worlds[key] is worlds
            assert [r.rid for r in advanced.related_rings(key)] == [
                r.rid for r in worlds.rings
            ]


def test_cache_advance_invalidates_touched_retains_disjoint():
    universe = make_universe()
    tokens = sorted(universe.tokens)
    rings = [
        Ring("a", frozenset(tokens[0:3]), c=C, ell=ELL, seq=0),
        Ring("b", frozenset(tokens[4:7]), c=C, ell=ELL, seq=1),
    ]
    cache = SolverCache(universe, rings)
    key_a = cache.related_key([tokens[0]])
    key_b = cache.related_key([tokens[4]])
    cache.base_worlds(key_a)
    kept = cache.base_worlds(key_b)

    touching = Ring("t", frozenset(tokens[2:5]), c=C, ell=ELL, seq=2)
    advanced, report = cache.advance(touching)
    assert report.touched_components == key_a | key_b == frozenset({0, 1})
    assert report.worlds_retained == 0 and report.worlds_invalidated == 2
    assert advanced._worlds == {}
    # Old cache untouched: in-flight requests keep their warm entries.
    assert cache.base_worlds(key_b) is kept
    assert cache.stats.worlds_hits == 1

    disjoint = Ring("d", frozenset(tokens[8:11]), c=C, ell=ELL, seq=2)
    advanced, report = cache.advance(disjoint)
    assert report.touched_components == frozenset()
    assert report.worlds_retained == 2 and report.worlds_invalidated == 0
    assert advanced.base_worlds(advanced.related_key([tokens[4]])) is kept
    assert advanced.stats.worlds_hits == 1  # fresh stats, warm entry


def test_cache_advance_kernel_states_follow_components():
    backend = resolve_backend("python")
    universe = make_universe()
    tokens = sorted(universe.tokens)
    rings = [
        Ring("a", frozenset(tokens[0:3]), c=C, ell=ELL, seq=0),
        Ring("b", frozenset(tokens[4:7]), c=C, ell=ELL, seq=1),
    ]
    cache = SolverCache(universe, rings)
    key_a = cache.related_key([tokens[0]])
    key_b = cache.related_key([tokens[4]])
    state_a = cache.kernel_state(key_a, backend)
    state_b = cache.kernel_state(key_b, backend)

    touching_a = Ring("t", frozenset(tokens[0:2]), c=C, ell=ELL, seq=2)
    advanced, report = cache.advance(touching_a)
    assert report.kernel_retained == 1 and report.kernel_invalidated == 1
    assert advanced.kernel_state(key_b, backend) is state_b
    assert advanced.stats.kernel_builds == 0
    rebuilt_a = advanced.kernel_state(
        advanced.related_key([tokens[0]]), backend
    )
    assert rebuilt_a is not state_a
    assert advanced.stats.kernel_builds == 1


def test_cache_advance_is_atomic_under_concurrent_fills():
    """advance() must filter atomic snapshots of the warm dicts.

    Solver threads keep inserting worlds/kernel entries into the *old*
    cache while a delta commit advances it on a connection thread.
    Iterating the live dicts raced those inserts and raised
    "dictionary changed size during iteration", failing a commit the
    journal had already recorded.
    """
    universe = make_universe()
    tokens = sorted(universe.tokens)
    rings = [
        Ring("a", frozenset(tokens[0:3]), c=C, ell=ELL, seq=0),
        Ring("b", frozenset(tokens[4:7]), c=C, ell=ELL, seq=1),
    ]
    cache = SolverCache(universe, rings)
    # Seed enough entries that the filtering pass spans many thread
    # switches.  Synthetic component ids are fine: advance only looks
    # at the keys.
    for i in range(4000):
        cache._worlds[frozenset({100 + i})] = None
        cache._kernel_states[(frozenset({100 + i}), "python")] = (None, None)
    ring = Ring("t", frozenset(tokens[0:2]), c=C, ell=ELL, seq=2)
    stop = threading.Event()

    def filler() -> None:
        i = 10**6
        while not stop.is_set():
            cache._worlds[frozenset({i})] = None
            cache._kernel_states[(frozenset({i}), "python")] = (None, None)
            i += 1

    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    thread = threading.Thread(target=filler, daemon=True)
    thread.start()
    try:
        for _ in range(30):
            advanced, report = cache.advance(ring)
            # The report describes exactly the snapshot that was filtered.
            assert report.worlds_retained == len(advanced._worlds)
            assert report.kernel_retained == len(advanced._kernel_states)
    finally:
        stop.set()
        thread.join()
        sys.setswitchinterval(old_interval)


# -- ChainSnapshot.advance / ServiceState -----------------------------------


def test_snapshot_advance_unpartitioned():
    universe = make_universe()
    tokens = sorted(universe.tokens)
    rings = (
        Ring("a", frozenset(tokens[0:3]), c=C, ell=ELL, seq=0),
        Ring("b", frozenset(tokens[4:7]), c=C, ell=ELL, seq=1),
    )
    state = ServiceState(universe, rings, epoch_mode="delta")
    snap = state.current()
    cache = snap.solver_cache()
    cache.base_worlds(cache.related_key([tokens[0]]))
    kept = cache.base_worlds(cache.related_key([tokens[4]]))
    snap.module_universe()
    snap.result_memo()["memo-key"] = "memo-value"

    ring = Ring("new", frozenset(tokens[0:2]), c=C, ell=ELL, seq=2)
    head = state.commit(ring)

    assert head.epoch == snap.epoch + 1
    assert head.rings == rings + (ring,)
    # The warm entry of the untouched component survived, the memo died.
    new_cache = head.solver_cache()
    assert new_cache.base_worlds(new_cache.related_key([tokens[4]])) is kept
    assert head.result_memo() == {}
    # The old snapshot still serves in-flight batches unchanged.
    assert snap.result_memo() == {"memo-key": "memo-value"}
    assert snap.solver_cache() is cache
    counters = state.delta_counters
    assert counters["commits"] == 1
    assert counters["worlds_retained"] == 1
    assert counters["worlds_invalidated"] == 1
    assert counters["modules_extended"] + counters["modules_rebuilt"] == 1
    assert counters["memo_dropped"] == 1
    assert state.caches_invalidated == 1


def test_delta_memo_only_commit_is_not_a_cache_invalidation():
    """caches_invalidated keeps its replace-mode meaning in delta mode.

    The request memo dies on *every* commit (a selection is a function
    of the whole history), so counting memo drops would turn the
    counter into a commit counter.  Only dropped warm solver state —
    worlds, kernel states, a module rebuild — counts.
    """
    universe = make_universe()
    tokens = sorted(universe.tokens)
    rings = (Ring("a", frozenset(tokens[0:3]), c=C, ell=ELL, seq=0),)
    state = ServiceState(universe, rings, epoch_mode="delta")
    snap = state.current()
    cache = snap.solver_cache()
    cache.base_worlds(cache.related_key([tokens[0]]))
    snap.module_universe()
    snap.result_memo()["memo-key"] = "memo-value"

    # Disjoint from every warm component, config-1 clean: only the memo
    # is dropped.
    state.commit(Ring("d", frozenset(tokens[8:11]), c=C, ell=ELL, seq=1))
    counters = state.delta_counters
    assert counters["memo_dropped"] == 1
    assert counters["worlds_invalidated"] == 0
    assert counters["kernel_invalidated"] == 0
    assert counters["modules_rebuilt"] == 0
    assert state.caches_invalidated == 0

    # A ring that reaches warm state still counts.
    state.commit(Ring("t", frozenset(tokens[0:2]), c=C, ell=ELL, seq=2))
    assert state.delta_counters["worlds_invalidated"] == 1
    assert state.caches_invalidated == 1


def test_snapshot_advance_partitioned_carries_untouched_batches():
    universe = make_universe(tokens=24, hts=6, seed=3)
    part = TokenPartition(universe, batches=4)
    state = ServiceState(universe, (), partition=part, epoch_mode="delta")
    snap = state.current()
    touched_token = part.tokens_of(0)[0]
    kept_token = part.tokens_of(2)[0]
    touched_view = snap.solve_view(touched_token)
    touched_view.solver_cache()
    touched_view.result_memo()["k"] = "v"
    kept_view = snap.solve_view(kept_token)
    kept_view.solver_cache()
    kept_view.result_memo()["k"] = "v"

    ring = Ring("c0", frozenset(part.tokens_of(0)[0:3]), c=C, ell=ELL, seq=0)
    head = state.commit(ring)

    # Untouched batch: the whole sub-snapshot (memo included) is carried
    # by identity — its (universe, rings) pair did not move.
    assert head.solve_view(kept_token) is kept_view
    assert head.solve_view(kept_token).result_memo() == {"k": "v"}
    # Touched batch: advanced (new sub-snapshot, ring appended, memo gone).
    new_touched = head.solve_view(touched_token)
    assert new_touched is not touched_view
    assert [r.rid for r in new_touched.rings] == ["c0"]
    assert new_touched.epoch == touched_view.epoch + 1
    assert new_touched.result_memo() == {}
    assert state.delta_counters["parts_retained"] == 1
    assert state.delta_counters["memo_dropped"] == 1


def test_epoch_mode_is_validated():
    universe = make_universe()
    with pytest.raises(ValueError, match="epoch_mode"):
        ServiceState(universe, epoch_mode="incremental")
    with pytest.raises(ValueError, match="epoch_mode"):
        SelectionService(
            universe, (), ServiceConfig(telemetry=False, epoch_mode="bogus")
        )
    assert EPOCH_MODES == ("replace", "delta")


def test_epoch_delta_counter_names_match_state():
    universe = make_universe()
    state = ServiceState(universe, epoch_mode="delta")
    reported = set(EpochDelta(ring=None).as_counters())
    assert reported == set(state.delta_counters) - {"commits"}


# -- live service: delta vs replace equivalence ------------------------------


def interleaving_script(
    rng: random.Random,
    universe: TokenUniverse,
    steps: int,
    partition: TokenPartition | None = None,
):
    """A randomized commit/request interleaving (commit ~1 in 4 steps).

    Partitioned, commit members are drawn from a single batch slice —
    the batch-locality the partition contract enforces.
    """
    tokens = sorted(universe.tokens)
    script, committed = [], 0
    for step in range(steps):
        if rng.random() < 0.25:
            pool = tokens
            if partition is not None:
                pool = sorted(partition.tokens_of(rng.randrange(partition.batches)))
            members = tuple(rng.sample(pool, min(len(pool), rng.randint(2, 4))))
            script.append(("commit", f"c{committed}", members))
            committed += 1
        else:
            script.append(("select", f"q{step}", rng.choice(tokens)))
    return script


def run_script(mode: str, universe: TokenUniverse, script, partition=None):
    config = ServiceConfig(telemetry=False, epoch_mode=mode, partition=partition)
    responses = []
    with SelectionService(universe, (), config) as service:
        for step in script:
            if step[0] == "commit":
                _, rid, members = step
                try:
                    service.commit_ring(tokens=members, c=C, ell=ELL, rid=rid)
                except ValueError:
                    # Partitioned: a spanning commit is rejected the
                    # same way in both modes — skip it in both.
                    pass
            else:
                _, request_id, target = step
                responses.append(
                    service.submit_wait(
                        SelectRequest(
                            request_id=request_id,
                            target=target,
                            c=C,
                            ell=ELL,
                            mode="exact",
                        ),
                        timeout=120.0,
                    )
                )
        stats = service.stats()
    return responses, stats


def canon(response) -> dict:
    payload = response.to_dict()
    for key in ("elapsed", "batch_id", "batch_size", "warm_cache"):
        payload.pop(key, None)
    attrs = payload.get("attrs")
    if attrs is not None:
        attrs.pop("memo", None)
        if not attrs:
            payload.pop("attrs")
    return payload


@pytest.mark.parametrize("batches", [None, 3])
def test_delta_matches_replace_under_interleaving(batches):
    universe = make_universe(tokens=12, hts=4, seed=11)
    part = None if batches is None else TokenPartition(universe, batches=batches)
    script = interleaving_script(random.Random(42), universe, 24, partition=part)
    replace, _ = run_script("replace", universe, script, partition=part)
    delta, stats = run_script("delta", universe, script, partition=part)
    assert [canon(r) for r in delta] == [canon(r) for r in replace]
    assert stats["delta"]["commits"] == stats["epochs_advanced"] > 0


def test_delta_counters_surface_in_stats_health_metrics():
    universe = make_universe(tokens=12, hts=4, seed=11)
    tokens = sorted(universe.tokens)
    config = ServiceConfig(telemetry=False, epoch_mode="delta")
    with SelectionService(universe, (), config) as service:
        service.submit_wait(
            SelectRequest(
                request_id="warm", target=tokens[0], c=C, ell=ELL, mode="exact"
            ),
            timeout=120.0,
        )
        service.commit_ring(tokens=tokens[0:3], c=C, ell=ELL, rid="c0")
        stats = service.stats()
        health = service.health()
        metrics = service.metrics_text()
    assert stats["epoch_mode"] == "delta"
    assert stats["delta"]["commits"] == 1
    assert stats["delta"]["memo_dropped"] >= 1
    assert health["epoch_mode"] == "delta"
    assert health["delta_commits"] == 1
    assert "repro_service_delta_commits_total 1" in metrics
    assert "repro_service_delta_worlds_retained_total" in metrics


def test_replace_mode_reports_zero_delta_counters():
    universe = make_universe(tokens=12, hts=4, seed=11)
    tokens = sorted(universe.tokens)
    with SelectionService(universe, (), ServiceConfig(telemetry=False)) as service:
        service.commit_ring(tokens=tokens[0:3], c=C, ell=ELL, rid="c0")
        stats = service.stats()
    assert stats["epoch_mode"] == "replace"
    assert all(value == 0 for value in stats["delta"].values())
