"""Unit tests for MLSAG multi-layer ring signatures."""

import pytest

from repro.crypto.keys import keypair_from_seed
from repro.crypto.lsag import SigningError
from repro.crypto.mlsag import MlsagProof, mlsag_sign, mlsag_verify


def make_ring(columns, layers, signer_column):
    signers = [keypair_from_seed(f"signer-layer{k}") for k in range(layers)]
    ring = []
    for j in range(columns):
        if j == signer_column:
            ring.append([kp.public for kp in signers])
        else:
            ring.append(
                [keypair_from_seed(f"decoy-{j}-{k}").public for k in range(layers)]
            )
    return ring, signers


class TestSignVerify:
    def test_round_trip_two_layers(self):
        ring, signers = make_ring(columns=4, layers=2, signer_column=1)
        proof = mlsag_sign(b"tx digest", ring, signers)
        assert mlsag_verify(b"tx digest", proof)

    def test_single_layer_degenerates_to_lsag_shape(self):
        ring, signers = make_ring(columns=5, layers=1, signer_column=0)
        proof = mlsag_sign(b"m", ring, signers)
        assert proof.layers == 1
        assert mlsag_verify(b"m", proof)

    def test_three_layers(self):
        ring, signers = make_ring(columns=3, layers=3, signer_column=2)
        proof = mlsag_sign(b"m", ring, signers)
        assert mlsag_verify(b"m", proof)

    def test_tampered_message_fails(self):
        ring, signers = make_ring(4, 2, 0)
        proof = mlsag_sign(b"message", ring, signers)
        assert not mlsag_verify(b"massage", proof)

    def test_tampered_response_fails(self):
        ring, signers = make_ring(4, 2, 0)
        proof = mlsag_sign(b"m", ring, signers)
        rows = [list(row) for row in proof.responses]
        rows[1][0] += 1
        tampered = MlsagProof(
            ring=proof.ring,
            c0=proof.c0,
            responses=tuple(tuple(row) for row in rows),
            key_images=proof.key_images,
        )
        assert not mlsag_verify(b"m", tampered)

    def test_wrong_key_image_fails(self):
        ring, signers = make_ring(4, 2, 0)
        proof = mlsag_sign(b"m", ring, signers)
        outsider = keypair_from_seed("outsider")
        tampered = MlsagProof(
            ring=proof.ring,
            c0=proof.c0,
            responses=proof.responses,
            key_images=(outsider.key_image(), proof.key_images[1]),
        )
        assert not mlsag_verify(b"m", tampered)


class TestStructureValidation:
    def test_signers_not_in_ring(self):
        ring, _ = make_ring(3, 2, 0)
        strangers = [keypair_from_seed(f"x{k}") for k in range(2)]
        with pytest.raises(SigningError):
            mlsag_sign(b"m", ring, strangers)

    def test_signers_split_across_columns_rejected(self):
        # Layer keys present but never together at one column.
        signers = [keypair_from_seed(f"signer-layer{k}") for k in range(2)]
        ring = [
            [signers[0].public, keypair_from_seed("d0").public],
            [keypair_from_seed("d1").public, signers[1].public],
        ]
        with pytest.raises(SigningError):
            mlsag_sign(b"m", ring, signers)

    def test_ragged_ring_rejected(self):
        signers = [keypair_from_seed("s0")]
        ring = [[signers[0].public], [keypair_from_seed("a").public,
                                      keypair_from_seed("b").public]]
        with pytest.raises(SigningError):
            mlsag_sign(b"m", ring, signers)

    def test_empty_inputs_rejected(self):
        with pytest.raises(SigningError):
            mlsag_sign(b"m", [], [])


class TestLinkability:
    def test_per_layer_key_images_link(self):
        ring_a, signers = make_ring(4, 2, 0)
        ring_b, _ = make_ring(5, 2, 3)
        # Place the same signers in ring_b's column 3.
        ring_b[3] = [kp.public for kp in signers]
        proof_a = mlsag_sign(b"first", ring_a, signers)
        proof_b = mlsag_sign(b"second", ring_b, signers)
        assert proof_a.key_images == proof_b.key_images

    def test_different_signers_unlinked(self):
        ring, signers = make_ring(4, 2, 0)
        other_signers = [keypair_from_seed(f"other{k}") for k in range(2)]
        ring2 = list(ring)
        ring2[2] = [kp.public for kp in other_signers]
        proof_a = mlsag_sign(b"m", ring, signers)
        proof_b = mlsag_sign(b"m", ring2, other_signers)
        assert set(proof_a.key_images).isdisjoint(proof_b.key_images)


class TestVerifierShapeChecks:
    def test_mismatched_dimensions_rejected(self):
        ring, signers = make_ring(3, 2, 0)
        proof = mlsag_sign(b"m", ring, signers)
        short = MlsagProof(
            ring=proof.ring,
            c0=proof.c0,
            responses=proof.responses[:-1],
            key_images=proof.key_images,
        )
        assert not mlsag_verify(b"m", short)

    def test_missing_key_image_rejected(self):
        ring, signers = make_ring(3, 2, 0)
        proof = mlsag_sign(b"m", ring, signers)
        partial = MlsagProof(
            ring=proof.ring,
            c0=proof.c0,
            responses=proof.responses,
            key_images=proof.key_images[:1],
        )
        assert not mlsag_verify(b"m", partial)
