"""Round-trip tests for chain serialization."""

import json

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.serialization import (
    block_from_dict,
    block_to_dict,
    chain_from_json,
    chain_to_json,
    transaction_from_dict,
    transaction_to_dict,
)
from repro.chain.transaction import RingInput, Transaction
from repro.chain.wallet import Wallet
from repro.crypto.keys import keypair_from_seed


def signed_chain():
    """A chain with a coinbase and one fully signed spend."""
    chain = Blockchain(verify_signatures=True)
    wallet = Wallet(name="serializer")
    keypairs = [wallet.derive_keypair() for _ in range(4)]
    txs = [Transaction(inputs=(), output_count=2, nonce=i) for i in range(2)]
    chain.append_block(chain.make_block(txs, timestamp=1.0))
    flat = []
    for index, tx in enumerate(txs):
        outs = tx.make_outputs(
            owners=[kp.public for kp in keypairs[index * 2 : index * 2 + 2]]
        )
        chain.register_owned_outputs(outs)
        flat.extend(outs)
    for output, keypair in zip(flat, keypairs):
        wallet.claim_output(output, keypair)
    plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
    spend = wallet.sign_spend(chain, plan)
    chain.append_block(chain.make_block([spend], timestamp=2.0))
    return chain


class TestTransactionRoundTrip:
    def test_plain_transaction(self):
        tx = Transaction(inputs=(), output_count=3, nonce=9)
        restored = transaction_from_dict(transaction_to_dict(tx))
        assert restored.tx_id == tx.tx_id

    def test_ring_input_with_key_image(self):
        keypair = keypair_from_seed("k")
        tx = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=("a", "b"),
                    key_image=keypair.key_image(),
                    claimed_c=1.5,
                    claimed_ell=2,
                ),
            ),
            output_count=1,
        )
        restored = transaction_from_dict(transaction_to_dict(tx))
        assert restored.tx_id == tx.tx_id
        assert restored.inputs[0].key_image == keypair.key_image()
        assert restored.inputs[0].claimed_c == 1.5


class TestBlockRoundTrip:
    def test_block_hash_preserved(self):
        chain = Blockchain(verify_signatures=False)
        tx = Transaction(inputs=(), output_count=2)
        block = chain.make_block([tx], timestamp=5.0)
        restored = block_from_dict(block_to_dict(block))
        assert restored.block_hash == block.block_hash


class TestChainRoundTrip:
    def test_full_chain_with_proofs(self):
        chain = signed_chain()
        document = chain_to_json(chain)
        restored = chain_from_json(document, verify_signatures=True)
        assert restored.height == chain.height
        assert restored.tip_hash == chain.tip_hash
        assert restored.universe.tokens == chain.universe.tokens
        assert [r.tokens for r in restored.rings] == [
            r.tokens for r in chain.rings
        ]

    def test_restore_revalidates(self):
        chain = signed_chain()
        payload = json.loads(chain_to_json(chain))
        # Tamper: flip the spend's claimed output count.
        payload["blocks"][1]["transactions"][0]["output_count"] += 1
        from repro.chain.errors import ValidationError

        with pytest.raises(ValidationError):
            chain_from_json(json.dumps(payload), verify_signatures=True)

    def test_unsupported_version_rejected(self):
        chain = signed_chain()
        payload = json.loads(chain_to_json(chain))
        payload["version"] = 999
        with pytest.raises(ValueError):
            chain_from_json(json.dumps(payload))

    def test_pretty_printing(self):
        chain = signed_chain()
        assert "\n" in chain_to_json(chain, indent=2)
