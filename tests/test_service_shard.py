"""The shard router contract: routing changes *where* work happens.

Three layers of pinning:

* the TokenMagic partition is deterministic and batch-local commits
  are enforced (:mod:`repro.service.partition`,
  :mod:`repro.service.state` retention);
* :class:`~repro.service.router.ShardRouter` responses are
  byte-identical (modulo execution coordinates: elapsed, batch ids,
  warm/memo flags) to the partitioned single-worker
  :class:`~repro.service.daemon.SelectionService` at equal seeds —
  including multi-batch scatter, interleaved commits, stale-epoch
  pins, unknown targets and shard-loss chaos replays;
* the socket front-end is pipelined, not lockstep: one client's burst
  micro-batches, two clients interleave, and non-select ops are
  barriers that observe every earlier select completed.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.ring import Ring, TokenUniverse
from repro.obs.clock import ManualClock
from repro.resilience.supervisor import RetryPolicy
from repro.service import (
    RouterConfig,
    SelectionService,
    SelectRequest,
    ServiceClient,
    ServiceConfig,
    ServiceState,
    ShardRouter,
    TokenPartition,
    serve_socket,
)
from repro.service.telemetry import format_stats, format_top


def shard_universe(tokens: int = 24, hts: int = 6, seed: int = 3) -> TokenUniverse:
    rng = random.Random(seed)
    return TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )


def batch_local_history(universe: TokenUniverse, batches: int = 4) -> list[Ring]:
    """One seed ring inside each of the first two batch slices."""
    part = TokenPartition(universe, batches=batches)
    return [
        Ring("r0", frozenset(part.tokens_of(0)[0:4]), c=2.0, ell=2, seq=0),
        Ring("r1", frozenset(part.tokens_of(1)[0:4]), c=2.0, ell=2, seq=1),
    ]


def canon(response) -> dict:
    """A response minus its execution coordinates.

    ``elapsed`` is wall-clock, ``batch_id``/``batch_size`` depend on
    how requests happened to coalesce, and ``warm_cache`` /
    ``attrs["memo"]`` on what ran before in the same process — none
    affect *what* was selected (the test_service_equivalence
    convention).
    """
    payload = response.to_dict()
    for key in ("elapsed", "batch_id", "batch_size", "warm_cache"):
        payload.pop(key, None)
    attrs = payload.get("attrs")
    if attrs is not None:
        attrs.pop("memo", None)
        if not attrs:
            payload.pop("attrs")
    return payload


# -- the partition ----------------------------------------------------------


def test_partition_is_deterministic_and_total():
    universe = shard_universe()
    a = TokenPartition(universe, batches=4)
    b = TokenPartition(universe, batches=4)
    assert a == b
    assert sorted(
        token for batch in range(a.batches) for token in a.tokens_of(batch)
    ) == sorted(universe.tokens)
    for batch in range(a.batches):
        for token in a.tokens_of(batch):
            assert a.batch_of(token) == batch
            assert token in a.universe_of(batch).tokens


def test_partition_rejects_unknown_and_spanning_rings():
    universe = shard_universe()
    part = TokenPartition(universe, batches=4)
    with pytest.raises(KeyError, match="not in the partitioned universe"):
        part.batch_of("zz")
    spanning = (part.tokens_of(0)[0], part.tokens_of(1)[0])
    with pytest.raises(ValueError, match="spans batches"):
        part.batch_of_ring(spanning)
    with pytest.raises(ValueError, match="not in the partitioned universe"):
        part.batch_of_ring(("zz",))


def test_commit_retains_untouched_batch_warm_state():
    universe = shard_universe()
    part = TokenPartition(universe, batches=4)
    state = ServiceState(universe, (), partition=part)
    snap = state.current()
    touched_token = part.tokens_of(0)[0]
    kept_token = part.tokens_of(2)[0]
    snap.solve_view(touched_token).solver_cache()
    kept_view = snap.solve_view(kept_token)
    kept_view.solver_cache()

    ring = Ring("c0", frozenset(part.tokens_of(0)[0:3]), c=2.0, ell=2, seq=0)
    head = state.commit(ring, retain_untouched=True)

    assert head.epoch == snap.epoch + 1
    assert head.solve_view(kept_token) is kept_view  # warm slice carried
    assert head.solve_view(touched_token) is not snap.solve_view(touched_token)
    assert state.caches_invalidated == 1  # only the touched batch dropped


def test_partition_one_matches_unpartitioned_service():
    universe = shard_universe()
    requests = [
        SelectRequest(request_id=f"r{i}", target=target, c=2.0, ell=2, mode=mode)
        for i, (target, mode) in enumerate(
            [("t03", "exact"), ("t07", "ladder"), ("t03", "exact"), ("t19", "ladder")]
        )
    ]
    with SelectionService(universe) as plain:
        baseline = [plain.submit_wait(request, 60.0) for request in requests]
    with SelectionService(universe, config=ServiceConfig(partition=1)) as one:
        partitioned = [one.submit_wait(request, 60.0) for request in requests]
    for a, b in zip(baseline, partitioned):
        da, db = a.to_dict(), b.to_dict()
        da.pop("elapsed"), db.pop("elapsed")
        assert da == db


# -- router vs partitioned single service ------------------------------------


def scripted_workload(service) -> list[dict]:
    """Selects + interleaved commits, identical against either backend.

    Exercises both modes, hot-target repeats, multi-batch scatter, a
    stale-epoch pin, an unknown target, and two commits whose
    invalidation the retained shards must get right.
    """
    part = TokenPartition(shard_universe(), batches=4)
    hot = [part.tokens_of(b)[5] for b in range(4)]
    out = []

    def run(requests):
        slots = [service.submit(request) for request in requests]
        out.extend(canon(slot.wait(60.0)) for slot in slots)

    run(
        [
            SelectRequest(request_id=f"a{i}", target=target, c=2.0, ell=2,
                          mode="exact")
            for i, target in enumerate(hot)
        ]
    )
    run(
        [
            SelectRequest(request_id=f"b{i}", target=target, c=2.0, ell=2,
                          mode="ladder", seed=7)
            for i, target in enumerate(hot)
        ]
    )
    first = next(entry for entry in out if entry["status"] == "ok")
    service.commit_ring(tokens=first["tokens"], c=2.0, ell=2)
    run(
        [
            SelectRequest(request_id=f"c{i}", target=target, c=2.0, ell=2,
                          mode="exact")
            for i, target in enumerate(hot)
        ]
    )
    # Stale pin: epoch 0 is gone after the commit.
    run([SelectRequest(request_id="stale", target=hot[0], c=2.0, ell=2,
                       epoch=0)])
    # Unknown target: the worker raises the partition KeyError.
    run([SelectRequest(request_id="unknown", target="zz", c=2.0, ell=2)])
    service.commit_ring(tokens=part.tokens_of(2)[0:3], c=2.0, ell=2)
    run(
        [
            SelectRequest(request_id=f"d{i}", target=target, c=2.0, ell=2,
                          mode="ladder", seed=11)
            for i, target in enumerate(hot)
        ]
    )
    return out


def test_router_matches_partitioned_single_service():
    universe = shard_universe()
    hist = batch_local_history(universe)
    with SelectionService(
        universe, hist, config=ServiceConfig(partition=4)
    ) as single:
        baseline = scripted_workload(single)
    with ShardRouter(
        universe, hist, config=RouterConfig(shards=2, batches=4)
    ) as router:
        sharded = scripted_workload(router)
    assert sharded == baseline
    statuses = {entry["status"] for entry in baseline}
    assert statuses == {"ok", "rejected", "error"}  # all paths exercised


def test_submit_many_scatter_preserves_input_order():
    universe = shard_universe()
    requests = [
        SelectRequest(request_id=f"s{i}", target=f"t{i:02d}", c=2.0, ell=2,
                      mode="exact")
        for i in range(0, 24, 2)
    ]
    with ShardRouter(
        universe, config=RouterConfig(shards=4, batches=8)
    ) as router:
        responses = router.submit_wait_many(requests, timeout=60.0)
    assert [r.request_id for r in responses] == [r.request_id for r in requests]
    assert all(r.status == "ok" for r in responses)


# -- shard loss and recovery -------------------------------------------------


def chaos_config(clock=None) -> RouterConfig:
    plan = {
        "version": 1,
        "seed": 0,
        "faults": [
            {"site": "shard.batch", "action": "die",
             "at_index": 0, "on_attempt": 0}
        ],
    }
    return RouterConfig(
        shards=2,
        batches=4,
        fault_plan=plan,
        clock=clock,
        retry=RetryPolicy(max_retries=2, hang_timeout=30.0, death_grace=0.5),
    )


def test_shard_loss_is_retried_and_responses_replay_identically():
    universe = shard_universe()
    requests = [
        SelectRequest(request_id=f"k{i}", target=f"t{i:02d}", c=2.0, ell=2,
                      mode="exact")
        for i in range(0, 24, 3)
    ]
    clock = ManualClock()
    with ShardRouter(universe, config=chaos_config(clock)) as router:
        chaotic = router.submit_wait_many(requests, timeout=60.0)
        assert router.counters.get("shard.retries", 0) >= 1
        health = router.health()
        assert health["health"] == "degraded"
        assert any("shard.retries" in reason for reason in health["reasons"])
        clock.advance(120.0)  # the telemetry window forgets the loss
        assert router.health()["health"] == "ready"
    with ShardRouter(
        universe, config=RouterConfig(shards=2, batches=4)
    ) as router:
        calm = router.submit_wait_many(requests, timeout=60.0)
    assert all(r.status == "ok" for r in chaotic)
    assert [canon(a) for a in chaotic] == [canon(b) for b in calm]


def test_commits_survive_a_shard_loss_between_batches():
    universe = shard_universe()
    part = TokenPartition(universe, batches=4)
    clock = ManualClock()
    with ShardRouter(universe, config=chaos_config(clock)) as router:
        first = router.submit_wait(
            SelectRequest(request_id="w0", target=part.tokens_of(0)[5],
                          c=2.0, ell=2, mode="exact"),
            timeout=60.0,
        )
        assert first.status == "ok"
        router.commit_ring(tokens=first.tokens, c=2.0, ell=2)
        after = router.submit_wait(
            SelectRequest(request_id="w1", target=part.tokens_of(2)[5],
                          c=2.0, ell=2, mode="exact"),
            timeout=60.0,
        )
        assert after.status == "ok"
        assert after.epoch == 1
    with ShardRouter(
        universe, config=RouterConfig(shards=2, batches=4)
    ) as router:
        calm_first = router.submit_wait(
            SelectRequest(request_id="w0", target=part.tokens_of(0)[5],
                          c=2.0, ell=2, mode="exact"),
            timeout=60.0,
        )
        router.commit_ring(tokens=calm_first.tokens, c=2.0, ell=2)
        calm_after = router.submit_wait(
            SelectRequest(request_id="w1", target=part.tokens_of(2)[5],
                          c=2.0, ell=2, mode="exact"),
            timeout=60.0,
        )
    assert canon(first) == canon(calm_first)
    assert canon(after) == canon(calm_after)


def test_retry_exhaustion_is_a_typed_internal_error():
    """A shard that dies on *every* attempt exhausts the supervised
    retry budget: the batch answers with a typed ``internal_error``
    carrying the attempt count (never an unhandled exception), and the
    resilience counters match the injected plan exactly — three deaths
    = two retries observed + one worker lost."""
    universe = shard_universe()
    plan = {
        "version": 1,
        "seed": 0,
        "faults": [
            {"site": "shard.batch", "action": "die",
             "at_index": 0, "on_attempt": attempt}
            for attempt in range(3)
        ],
    }
    clock = ManualClock()
    # Every attempt dies at dispatch, so a short hang timeout keeps
    # the three doomed attempts cheap; the healthy follow-up solve is
    # milliseconds against a 6-token batch slice.
    config = RouterConfig(
        shards=2,
        batches=4,
        fault_plan=plan,
        clock=clock,
        retry=RetryPolicy(max_retries=2, hang_timeout=3.0, death_grace=0.25),
    )
    with ShardRouter(universe, config=config) as router:
        doomed = router.submit_wait(
            SelectRequest(request_id="x0", target="t00", c=2.0, ell=2,
                          mode="exact"),
            timeout=60.0,
        )
        assert doomed.status == "error"
        assert doomed.code == "internal_error"
        assert "3 attempt(s)" in doomed.detail

        assert router.counters.get("shard.retries") == 2
        assert router.counters.get("shard.worker_lost") == 1
        assert router.telemetry.window_count("shard.retries") == 2
        assert router.telemetry.window_count("shard.worker_lost") == 1
        health = router.health()
        assert health["health"] == "degraded"
        assert any("shard.worker_lost=1" in r for r in health["reasons"])

        # The exhaustion was scoped to that batch: the respawned
        # worker (fresh fault counters, dispatch seq past every
        # at_index=0 spec) serves the same target fine.
        follow = router.submit_wait(
            SelectRequest(request_id="x1", target="t00", c=2.0, ell=2,
                          mode="exact"),
            timeout=60.0,
        )
        assert follow.status == "ok"
        assert follow.request_id == "x1"


# -- fleet observability -----------------------------------------------------


def test_stats_health_metrics_carry_shard_breakdown():
    universe = shard_universe()
    with ShardRouter(
        universe, config=RouterConfig(shards=2, batches=4)
    ) as router:
        router.submit_wait_many(
            [
                SelectRequest(request_id=f"o{i}", target=f"t{i:02d}",
                              c=2.0, ell=2, mode="exact")
                for i in range(0, 24, 4)
            ],
            timeout=60.0,
        )
        stats = router.stats()
        health = router.health()
        metrics = router.metrics_text()

    rows = stats["shards"]
    assert [row["shard"] for row in rows] == [0, 1]
    assert sorted(
        batch for row in rows for batch in row["batches"]
    ) == [0, 1, 2, 3]
    assert sum(row["requests"] for row in rows) == 6
    for row in rows:
        assert set(row) >= {
            "shard", "batches", "queue_depth", "requests", "epoch",
            "warm_hit_rate", "memo_hit_rate", "p99_s", "rungs",
        }
    assert [row["shard"] for row in health["shards"]] == [0, 1]
    assert health["health"] == "ready"

    assert 'shard="0"' in metrics and 'shard="1"' in metrics
    # Families are declared once (fleet body); shard bodies are labelled.
    assert metrics.count("# TYPE repro_service_requests_total counter") == 1
    assert 'repro_service_requests_total{shard="0"}' in metrics

    rendered = format_stats(stats)
    assert "shards:" in rendered and "rungs" in rendered
    framed = format_top(stats, health)
    assert "fleet: 2 shard(s)" in framed


# -- the pipelined front-end -------------------------------------------------


def socket_backdrop(service, tmp_path):
    path = tmp_path / "svc.sock"
    ready = threading.Event()
    thread = threading.Thread(
        target=serve_socket, args=(service, path, ready), daemon=True
    )
    thread.start()
    assert ready.wait(5.0)
    return path, thread


def test_single_connection_burst_micro_batches(tmp_path):
    universe = shard_universe()
    config = ServiceConfig(linger_s=0.25)
    with SelectionService(universe, config=config) as service:
        path, thread = socket_backdrop(service, tmp_path)
        with ServiceClient(path) as client:
            responses = client.select_many(
                [
                    SelectRequest(request_id=f"p{i}", target=f"t{i:02d}",
                                  c=2.0, ell=2, mode="exact")
                    for i in range(6)
                ]
            )
            assert [r.request_id for r in responses] == [f"p{i}" for i in range(6)]
            assert all(r.status == "ok" for r in responses)
            # Lockstep served every request in its own batch; the
            # pipelined reader admits the whole burst, so the linger
            # coalesces it.
            assert max(r.batch_size for r in responses) > 1
            client.shutdown()
        thread.join(timeout=5.0)


def test_two_clients_interleave_without_lockstep(tmp_path):
    universe = shard_universe()
    with SelectionService(universe) as service:
        path, thread = socket_backdrop(service, tmp_path)
        results: dict[str, list] = {}

        def run_client(name: str, targets: list[str]) -> None:
            with ServiceClient(path) as client:
                results[name] = client.select_many(
                    [
                        SelectRequest(request_id=f"{name}{i}", target=target,
                                      c=2.0, ell=2, mode="exact")
                        for i, target in enumerate(targets)
                    ]
                )

        a = threading.Thread(
            target=run_client, args=("a", ["t01", "t05", "t09", "t13"])
        )
        b = threading.Thread(
            target=run_client, args=("b", ["t02", "t06", "t10", "t14"])
        )
        a.start(), b.start()
        a.join(30.0), b.join(30.0)
        for name in ("a", "b"):
            assert [r.request_id for r in results[name]] == [
                f"{name}{i}" for i in range(4)
            ]
            assert all(r.status == "ok" for r in results[name])
        with ServiceClient(path) as client:
            client.shutdown()
        thread.join(timeout=5.0)


def test_non_select_ops_are_barriers_after_pipelined_selects(tmp_path):
    universe = shard_universe()
    with SelectionService(universe) as service:
        path, thread = socket_backdrop(service, tmp_path)
        with ServiceClient(path) as client:
            burst = [
                SelectRequest(request_id="q1", target="t03", c=2.0, ell=2,
                              mode="exact").to_dict(),
                {"op": "stats", "id": "s1"},
                SelectRequest(request_id="q2", target="t07", c=2.0, ell=2,
                              mode="exact").to_dict(),
                {"op": "health", "id": "h1"},
            ]
            responses = client.request_many(burst)
            assert responses[0]["id"] == "q1"
            # The stats barrier observes q1 completed.
            assert responses[1]["counters"]["requests"] >= 1
            assert responses[2]["id"] == "q2"
            assert responses[3]["health"] in ("ready", "degraded")
            client.shutdown()
        thread.join(timeout=5.0)


def test_router_behind_socket_server(tmp_path):
    universe = shard_universe()
    with ShardRouter(
        universe, config=RouterConfig(shards=2, batches=4)
    ) as router:
        path, thread = socket_backdrop(router, tmp_path)
        with ServiceClient(path) as client:
            responses = client.select_many(
                [
                    SelectRequest(request_id=f"v{i}", target=f"t{i:02d}",
                                  c=2.0, ell=2, mode="exact")
                    for i in range(0, 24, 6)
                ]
            )
            assert all(r.status == "ok" for r in responses)
            commit = client.commit(responses[0].tokens, c=2.0, ell=2)
            assert commit["epoch"] == 1
            stats = client.stats()
            assert [row["shard"] for row in stats["shards"]] == [0, 1]
            assert client.epoch()["epoch"] == 1
            client.shutdown()
        thread.join(timeout=5.0)
