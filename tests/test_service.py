"""Service-layer edge cases: admission, epochs, batch-mate isolation.

The scenarios the ISSUE names explicitly:

* a full admission queue rejects with a typed ``queue_full`` response
  instead of blocking or buffering unboundedly;
* a snapshot-epoch advance between admission and execution rejects
  *only* the requests pinned to the dead epoch — floating batch-mates
  are served against the new snapshot;
* one request degrading through the ladder (or blowing up on an
  injected fault) never poisons the other members of its batch.

The batching determinism trick used throughout: submit against a
*stopped* service, so the queue state is exactly known, then
``start()`` and wait — the worker drains everything in one batch.
"""

from __future__ import annotations

import pytest

from repro.core.bfs import bfs_select
from repro.core.problem import DamsInstance
from repro.core.ring import Ring, TokenUniverse
from repro.service import (
    AdmissionQueue,
    ProtocolError,
    SelectionService,
    SelectRequest,
    SelectResponse,
    ServiceConfig,
    ServiceState,
)
from repro.service.batching import EPOCH_ANY
from repro.service.protocol import decode, encode
from repro.service.server import handle_line


def small_universe() -> TokenUniverse:
    return TokenUniverse(
        {
            "t1": "h1", "t2": "h2", "t3": "h1", "t4": "h3",
            "t5": "h2", "t6": "h4", "t7": "h3", "t8": "h4",
        }
    )


def history() -> list[Ring]:
    return [
        Ring("r1", frozenset({"t1", "t2"}), c=2.0, ell=2, seq=0),
        Ring("r2", frozenset({"t1", "t2"}), c=2.0, ell=2, seq=1),
    ]


def request(rid: str, target: str = "t3", **kwargs) -> SelectRequest:
    kwargs.setdefault("mode", "exact")
    return SelectRequest(request_id=rid, target=target, c=2.0, ell=2, **kwargs)


# -- admission control -------------------------------------------------------


def test_queue_full_rejection_is_immediate_and_typed():
    service = SelectionService(
        small_universe(), history(), ServiceConfig(max_queue=2)
    )
    # Not started: nothing drains, so the queue state is exact.
    admitted = [service.submit(request(f"q{i}")) for i in range(2)]
    overflow = service.submit(request("q-over"))

    assert overflow.done  # resolved synchronously, before any worker ran
    rejected = overflow.wait(0)
    assert rejected.status == "rejected"
    assert rejected.code == "queue_full"
    assert "retry" in (rejected.detail or "")

    service.start()
    try:
        served = [pending.wait(30.0) for pending in admitted]
    finally:
        service.stop()
    assert all(response.status == "ok" for response in served)
    assert service.stats()["refused"] == 1
    assert service.counters["rejected.queue_full"] == 1


def test_admission_queue_closed_refuses():
    queue: AdmissionQueue[int] = AdmissionQueue(max_depth=4)
    assert queue.offer(1)
    queue.close()
    assert not queue.offer(2)
    batch = queue.drain_batch(timeout=0.0)
    assert batch is not None and batch.items == [1]
    assert queue.drain_batch(timeout=0.0) is None


def test_admission_queue_never_mixes_epoch_pins():
    queue: AdmissionQueue[str] = AdmissionQueue(max_depth=8, max_batch=8)
    queue.offer("a0", epoch_key=0)
    queue.offer("b1", epoch_key=1)
    queue.offer("a1", epoch_key=0)
    queue.offer("free", epoch_key=EPOCH_ANY)
    first = queue.drain_batch(timeout=0.0)
    second = queue.drain_batch(timeout=0.0)
    assert first is not None and second is not None
    # Epoch-0 pins and the floating request share; the epoch-1 pin waits.
    assert first.items == ["a0", "a1", "free"]
    assert first.epoch_key == 0
    assert second.items == ["b1"]
    assert second.epoch_key == 1


def test_admission_queue_floating_batch_adopts_first_pin():
    queue: AdmissionQueue[str] = AdmissionQueue(max_depth=8, max_batch=8)
    queue.offer("free", epoch_key=EPOCH_ANY)
    queue.offer("pin3", epoch_key=3)
    queue.offer("pin4", epoch_key=4)
    batch = queue.drain_batch(timeout=0.0)
    assert batch is not None
    assert batch.items == ["free", "pin3"]
    assert batch.epoch_key == 3


# -- snapshot epochs ---------------------------------------------------------


def test_stale_epoch_rejected_mid_batch_without_poisoning_mates():
    service = SelectionService(small_universe(), history())
    pinned = service.submit(request("pinned", epoch=0))
    floating = service.submit(request("floating", target="t5"))
    # The chain grows while both requests sit in the queue: the batch
    # they end up in executes against epoch 1.
    service.commit_ring(["t3", "t4"], c=2.0, ell=2)
    assert service.epoch == 1

    service.start()
    try:
        stale = pinned.wait(30.0)
        served = floating.wait(30.0)
    finally:
        service.stop()

    assert stale.status == "rejected"
    assert stale.code == "stale_epoch"
    assert stale.epoch == 1
    assert served.status == "ok"
    assert served.epoch == 1
    # Same batch: the stale rejection did not split or kill the batch.
    assert stale.batch_id == served.batch_id
    assert stale.batch_size == served.batch_size == 2
    # The floating mate was answered against the *new* snapshot (the
    # committed ring consumed t3, so its history is two rings deeper).
    direct = bfs_select(
        DamsInstance(
            small_universe(),
            history()
            + [Ring("svc:2", frozenset({"t3", "t4"}), c=2.0, ell=2, seq=2)],
            "t5",
            c=2.0,
            ell=2,
        )
    )
    assert sorted(served.tokens) == sorted(direct.ring.tokens)


def test_commit_invalidates_warm_cache_deterministically():
    service = SelectionService(small_universe(), history())
    service.start()
    try:
        first = service.submit_wait(request("w1"), 30.0)
        second = service.submit_wait(request("w2", target="t4"), 30.0)
        assert not first.warm_cache and second.warm_cache
        service.commit_ring(["t3", "t4"], c=2.0, ell=2)
        third = service.submit_wait(request("w3", target="t5"), 30.0)
        assert not third.warm_cache  # new epoch starts cold
    finally:
        service.stop()
    assert service.state.caches_invalidated == 1


def test_commit_rejects_duplicate_rid():
    state = ServiceState(small_universe(), history())
    with pytest.raises(ValueError, match="duplicate ring id"):
        state.commit(Ring("r1", frozenset({"t3"}), c=1.0, ell=1, seq=2))


# -- batch-mate isolation ----------------------------------------------------


def test_one_degrading_request_does_not_poison_batch_mates():
    service = SelectionService(small_universe(), history())
    mates = [
        service.submit(request("m1", target="t3")),
        # A budget so small the exact rung trips on its first deadline
        # check; the ladder steps down and still answers.
        service.submit(
            SelectRequest(
                request_id="victim", target="t4", c=2.0, ell=2,
                mode="ladder", time_budget=1e-9,
            )
        ),
        service.submit(request("m2", target="t5")),
    ]
    service.start()
    try:
        first, degraded, last = [pending.wait(30.0) for pending in mates]
    finally:
        service.stop()

    assert degraded.status == "ok"
    assert degraded.degraded and degraded.rung != "exact"
    # All three shared one batch; the mates got exact, undegraded answers
    # identical to direct solver calls.
    assert first.batch_id == degraded.batch_id == last.batch_id
    for response, target in ((first, "t3"), (last, "t5")):
        assert response.status == "ok" and not response.degraded
        direct = bfs_select(
            DamsInstance(small_universe(), history(), target, c=2.0, ell=2)
        )
        assert sorted(response.tokens) == sorted(direct.ring.tokens)
        assert response.candidates_checked == direct.candidates_checked


def test_exact_mode_budget_trip_is_a_typed_error():
    service = SelectionService(small_universe(), history())
    service.start()
    try:
        response = service.submit_wait(
            request("b1", time_budget=1e-9), 30.0
        )
    finally:
        service.stop()
    assert response.status == "error"
    assert response.code == "budget_exceeded"


def test_per_request_fault_plan_is_isolated_and_fresh():
    plan = {
        "version": 1,
        "seed": 0,
        "faults": [{"site": "bfs.candidate", "action": "error", "at_hit": 1}],
    }
    service = SelectionService(small_universe(), history())
    chaotic_a = service.submit(request("chaos-a", fault_plan=plan))
    healthy = service.submit(request("healthy", target="t4"))
    chaotic_b = service.submit(request("chaos-b", target="t5", fault_plan=plan))
    service.start()
    try:
        responses = [p.wait(30.0) for p in (chaotic_a, healthy, chaotic_b)]
    finally:
        service.stop()

    assert responses[0].status == "error"
    assert responses[0].code == "fault_injected"
    # Fresh plan per request: the second chaotic request fires at *its*
    # first candidate too (per-process counters would have spent the
    # single max_fires already).
    assert responses[2].status == "error"
    assert responses[2].code == "fault_injected"
    assert responses[1].status == "ok"
    direct = bfs_select(
        DamsInstance(small_universe(), history(), "t4", c=2.0, ell=2)
    )
    assert sorted(responses[1].tokens) == sorted(direct.ring.tokens)


def test_infeasible_is_a_typed_error_not_a_crash():
    # ell larger than the number of distinct HTs can never be met.
    service = SelectionService(small_universe(), history())
    service.start()
    try:
        response = service.submit_wait(
            SelectRequest(
                request_id="inf", target="t3", c=1.0, ell=7, mode="exact"
            ),
            30.0,
        )
        after = service.submit_wait(request("after", target="t4"), 30.0)
    finally:
        service.stop()
    assert response.status == "error"
    assert response.code == "infeasible"
    assert after.status == "ok"


# -- result memo -------------------------------------------------------------


def test_identical_requests_are_memo_served_byte_identically():
    service = SelectionService(small_universe(), history())
    service.start()
    try:
        first = service.submit_wait(request("a1"), 30.0)
        second = service.submit_wait(request("a2"), 30.0)
    finally:
        service.stop()
    direct = bfs_select(
        DamsInstance(small_universe(), history(), "t3", c=2.0, ell=2)
    )
    for response in (first, second):
        assert response.status == "ok"
        assert sorted(response.tokens) == sorted(direct.ring.tokens)
        assert response.candidates_checked == direct.candidates_checked
    assert "memo" not in first.attrs
    assert second.attrs.get("memo") is True
    assert second.request_id == "a2"  # identity is per-request, not replayed
    assert service.counters["memo.hits"] == 1
    assert service.counters["memo.stores"] == 1


def test_memo_dies_with_the_epoch():
    service = SelectionService(small_universe(), history())
    service.start()
    try:
        service.submit_wait(request("e1", target="t5"), 30.0)
        service.commit_ring(["t3", "t4"], c=2.0, ell=2)
        again = service.submit_wait(request("e2", target="t5"), 30.0)
    finally:
        service.stop()
    # Same parameters, new snapshot: solved fresh, not replayed.
    assert again.status == "ok"
    assert "memo" not in again.attrs
    assert "memo.hits" not in service.counters
    assert service.counters["memo.stores"] == 2


def test_ladder_memo_is_seed_scoped():
    service = SelectionService(small_universe(), history())
    service.start()
    try:
        service.submit_wait(request("s0", mode="ladder", seed=0), 30.0)
        other = service.submit_wait(request("s1", mode="ladder", seed=1), 30.0)
        same = service.submit_wait(request("s0b", mode="ladder", seed=0), 30.0)
    finally:
        service.stop()
    assert "memo" not in other.attrs  # different seed, different key
    assert same.attrs.get("memo") is True
    assert service.counters["memo.hits"] == 1
    assert service.counters["memo.stores"] == 2


def test_fault_plan_requests_bypass_the_memo():
    plan = {
        "version": 1,
        "seed": 0,
        "faults": [{"site": "bfs.candidate", "action": "error", "at_hit": 1}],
    }
    service = SelectionService(small_universe(), history())
    service.start()
    try:
        healthy = service.submit_wait(request("h1"), 30.0)
        chaotic = service.submit_wait(request("h2", fault_plan=plan), 30.0)
    finally:
        service.stop()
    assert healthy.status == "ok"
    # A memoized replay would have masked the injected fault.
    assert chaotic.status == "error"
    assert chaotic.code == "fault_injected"
    assert "memo.hits" not in service.counters


# -- protocol ----------------------------------------------------------------


def test_select_request_round_trips_through_wire_form():
    req = SelectRequest(
        request_id="x", target="t3", c=2.0, ell=2, mode="exact",
        epoch=4, time_budget=1.5, max_mixins=3, seed=9,
    )
    assert SelectRequest.from_dict(decode(encode(req.to_dict()))) == req


def test_select_response_round_trips_through_wire_form():
    resp = SelectResponse(
        request_id="x", status="ok", epoch=2, tokens=("t3", "t4"),
        mixins=("t4",), rung="exact", claimed_c=2.0, claimed_ell=2,
        candidates_checked=3, elapsed=0.25, batch_id=7, batch_size=3,
        warm_cache=True,
    )
    parsed = SelectResponse.from_dict(decode(encode(resp.to_dict())))
    assert parsed.ok and sorted(parsed.tokens) == ["t3", "t4"]
    assert parsed.batch_id == 7 and parsed.warm_cache


def test_protocol_rejects_unknown_mode_and_empty_id():
    with pytest.raises(ProtocolError):
        SelectRequest(request_id="x", target="t", c=1.0, ell=1, mode="warp")
    with pytest.raises(ProtocolError):
        SelectRequest(request_id="", target="t", c=1.0, ell=1)
    with pytest.raises(ProtocolError):
        SelectRequest.from_dict({"id": "x", "target": "t", "c": "NaN-ish"})


def test_handle_line_answers_malformed_input_without_dying():
    service = SelectionService(small_universe(), history())
    line, keep_going = handle_line(service, "{broken")
    assert keep_going
    payload = decode(line)
    assert payload["status"] == "rejected"
    assert payload["code"] == "bad_request"

    line, keep_going = handle_line(service, encode({"op": "teleport"}))
    assert keep_going and decode(line)["code"] == "bad_request"

    line, keep_going = handle_line(service, encode({"op": "shutdown"}))
    assert not keep_going and decode(line)["status"] == "ok"
