"""Unit tests for the Monero-shaped and synthetic data generators."""


import pytest

from repro.data.monero import (
    FRESH_TOKEN_COUNT,
    SUPER_RS_COUNT,
    SUPER_RS_SIZE,
    TOKEN_COUNT,
    TX_COUNT,
    generate_monero_hour,
)
from repro.data.synthetic import SyntheticConfig, generate_synthetic
from repro.data.workload import sample_instances


class TestMoneroHour:
    def setup_method(self):
        self.hour = generate_monero_hour(seed=0)

    def test_exact_paper_aggregates(self):
        assert len(self.hour.universe) == TOKEN_COUNT
        assert len(self.hour.outputs_per_tx) == TX_COUNT
        assert sum(self.hour.outputs_per_tx.values()) == TOKEN_COUNT
        assert len(self.hour.rings) == SUPER_RS_COUNT
        assert len(self.hour.fresh_tokens) == FRESH_TOKEN_COUNT

    def test_ring_sizes_are_monero_standard(self):
        assert all(len(r) == SUPER_RS_SIZE for r in self.hour.rings)

    def test_rings_are_disjoint(self):
        seen = set()
        for ring in self.hour.rings:
            assert seen.isdisjoint(ring.tokens)
            seen |= ring.tokens

    def test_fresh_tokens_outside_rings(self):
        in_rings = set()
        for ring in self.hour.rings:
            in_rings |= ring.tokens
        assert not (set(self.hour.fresh_tokens) & in_rings)

    def test_two_output_transactions_dominate(self):
        # Figure 3: the mode of the distribution is 2 outputs.
        from collections import Counter

        counts = Counter(self.hour.outputs_per_tx.values())
        assert counts.most_common(1)[0][0] == 2

    def test_deterministic_per_seed(self):
        again = generate_monero_hour(seed=0)
        assert again.universe.tokens == self.hour.universe.tokens
        assert [r.tokens for r in again.rings] == [r.tokens for r in self.hour.rings]

    def test_seeds_vary_arrangement(self):
        other = generate_monero_hour(seed=1)
        assert [r.tokens for r in other.rings] != [
            r.tokens for r in self.hour.rings
        ]

    def test_module_universe_composition(self):
        modules = self.hour.module_universe()
        supers = [m for m in modules.modules if m.is_super]
        fresh = [m for m in modules.modules if not m.is_super]
        assert len(supers) == SUPER_RS_COUNT
        assert len(fresh) == FRESH_TOKEN_COUNT


class TestSynthetic:
    def test_default_config_counts(self):
        data = generate_synthetic()
        assert len(data.rings) == 50
        assert len(data.fresh_tokens) == 10
        assert all(10 <= len(r) <= 20 for r in data.rings)

    def test_config_respected(self):
        config = SyntheticConfig(
            super_count=7, super_size_range=(2, 4), fresh_count=3, sigma=5.0, seed=9
        )
        data = generate_synthetic(config)
        assert len(data.rings) == 7
        assert len(data.fresh_tokens) == 3
        assert all(2 <= len(r) <= 4 for r in data.rings)

    def test_sigma_controls_ht_spread(self):
        narrow = generate_synthetic(SyntheticConfig(sigma=2.0, seed=1))
        wide = generate_synthetic(SyntheticConfig(sigma=16.0, seed=1))
        assert len(narrow.universe.hts) < len(wide.universe.hts)

    def test_rings_disjoint(self):
        data = generate_synthetic()
        seen = set()
        for ring in data.rings:
            assert seen.isdisjoint(ring.tokens)
            seen |= ring.tokens

    def test_deterministic_per_seed(self):
        a = generate_synthetic(SyntheticConfig(seed=3))
        b = generate_synthetic(SyntheticConfig(seed=3))
        assert a.universe.tokens == b.universe.tokens

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(super_size_range=(5, 2))
        with pytest.raises(ValueError):
            SyntheticConfig(sigma=0)
        with pytest.raises(ValueError):
            SyntheticConfig(super_count=-1)


class TestWorkload:
    def test_sample_count_and_membership(self):
        data = generate_synthetic(SyntheticConfig(super_count=5, fresh_count=2))
        modules = data.module_universe()
        instances = list(sample_instances(modules, c=0.6, ell=3, count=20, seed=0))
        assert len(instances) == 20
        for instance in instances:
            assert instance.target_token in modules.universe
            assert instance.c == 0.6
            assert instance.ell == 3

    def test_reproducible(self):
        data = generate_synthetic(SyntheticConfig(super_count=5))
        modules = data.module_universe()
        a = [i.target_token for i in sample_instances(modules, 1, 2, 10, seed=4)]
        b = [i.target_token for i in sample_instances(modules, 1, 2, 10, seed=4)]
        assert a == b

    def test_empty_universe_rejected(self):
        from repro.core.modules import ModuleUniverse
        from repro.core.ring import TokenUniverse

        modules = ModuleUniverse(TokenUniverse(), [])
        with pytest.raises(ValueError):
            list(sample_instances(modules, 1, 1, 1))
