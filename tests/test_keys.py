"""Unit tests for key pairs and key images."""

import pytest

from repro.crypto.ed25519 import G, L, scalar_mult
from repro.crypto.keys import (
    KeyPair,
    PrivateKey,
    PublicKey,
    generate_keypair,
    keypair_from_seed,
)


class TestPrivateKey:
    def test_public_key_derivation(self):
        private = PrivateKey(12345)
        assert private.public_key().point == scalar_mult(12345, G)

    def test_zero_scalar_rejected(self):
        with pytest.raises(ValueError):
            PrivateKey(0)

    def test_out_of_range_scalar_rejected(self):
        with pytest.raises(ValueError):
            PrivateKey(L)

    def test_key_image_deterministic(self):
        private = PrivateKey(777)
        assert private.key_image() == private.key_image()

    def test_key_images_differ_between_keys(self):
        assert PrivateKey(1).key_image() != PrivateKey(2).key_image()


class TestKeyPair:
    def test_public_matches_private(self):
        pair = KeyPair(PrivateKey(42))
        assert pair.public.point == scalar_mult(42, G)

    def test_key_image_shortcut(self):
        pair = KeyPair(PrivateKey(42))
        assert pair.key_image() == pair.private.key_image()


class TestGeneration:
    def test_generate_is_valid(self):
        pair = generate_keypair()
        assert 0 < pair.private.scalar < L

    def test_generate_unique(self):
        assert generate_keypair().private.scalar != generate_keypair().private.scalar

    def test_seed_deterministic(self):
        assert keypair_from_seed("alice").public.encode() == keypair_from_seed(
            "alice"
        ).public.encode()

    def test_seed_bytes_and_str_equivalent(self):
        assert (
            keypair_from_seed("alice").private.scalar
            == keypair_from_seed(b"alice").private.scalar
        )

    def test_different_seeds_differ(self):
        assert (
            keypair_from_seed("alice").private.scalar
            != keypair_from_seed("bob").private.scalar
        )


class TestPublicKey:
    def test_hex_matches_encode(self):
        public = PublicKey(scalar_mult(9, G))
        assert public.hex == public.encode().hex()
