"""Empirical validation of the paper's theorems on random instances.

Each test realizes one theorem's statement as an executable check over
randomly generated (but configuration-compliant, where required)
instances, cross-checking the polynomial shortcuts against exhaustive
ground truth.
"""


from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.combinations import enumerate_combinations, has_complete_assignment
from repro.core.diversity import ht_counts_satisfy
from repro.core.dtrs import get_dtrss
from repro.core.modules import (
    ModuleUniverse,
    second_config_ell,
    theorem61_dtrs_token_sets,
)
from repro.core.ring import Ring, TokenUniverse
from repro.tokenmagic.registry import consumed_closure


@st.composite
def config1_worlds(draw, max_groups=3, max_group_size=4):
    """Ring systems obeying the first practical configuration.

    Rings are organized into disjoint groups; inside each group rings
    form a nested chain (every later ring is a superset of the earlier
    ones), so every ring set drawn is superset-or-disjoint compliant.
    """
    group_count = draw(st.integers(min_value=1, max_value=max_groups))
    ht_count = draw(st.integers(min_value=1, max_value=6))
    universe_map = {}
    rings = []
    seq = 0
    token_index = 0
    for group in range(group_count):
        base_size = draw(st.integers(min_value=1, max_value=max_group_size))
        members = []
        for _ in range(base_size):
            token = f"t{token_index}"
            token_index += 1
            universe_map[token] = f"h{draw(st.integers(0, ht_count - 1))}"
            members.append(token)
        rings.append(Ring(rid=f"r{seq}", tokens=frozenset(members), seq=seq))
        seq += 1
        # Possibly one superset extension of the group.
        if draw(st.booleans()):
            extra = draw(st.integers(min_value=1, max_value=2))
            for _ in range(extra):
                token = f"t{token_index}"
                token_index += 1
                universe_map[token] = f"h{draw(st.integers(0, ht_count - 1))}"
                members.append(token)
            rings.append(Ring(rid=f"r{seq}", tokens=frozenset(members), seq=seq))
            seq += 1
    # A few fresh tokens.
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        token = f"t{token_index}"
        token_index += 1
        universe_map[token] = f"h{draw(st.integers(0, ht_count - 1))}"
    return TokenUniverse(universe_map), rings


class TestTheorem41:
    @settings(max_examples=50, deadline=None)
    @given(config1_worlds())
    def test_tight_groups_fully_consumed(self, world):
        universe, rings = world
        assume(has_complete_assignment(rings))
        # For every subset of rings realized as a group (here: each
        # nested chain), check the tightness rule.
        from itertools import combinations as subsets

        if len(rings) > 4:
            rings = rings[:4]
        closure = consumed_closure(rings)
        for size in range(1, len(rings) + 1):
            for group in subsets(rings, size):
                union = set()
                for ring in group:
                    union |= ring.tokens
                if len(union) == len(group):
                    assert frozenset(union) <= closure


class TestTheorem61:
    @settings(max_examples=40, deadline=None)
    @given(config1_worlds())
    def test_psi_sets_match_exact_dtrs_token_sets(self, world):
        """Under configuration 1, the psi_{i,j} sets of Theorem 6.1 are
        exactly the token sets of HT-determining DTRSs."""
        universe, rings = world
        assume(rings)
        assume(has_complete_assignment(rings))
        worlds = list(enumerate_combinations(rings, limit=300))
        assume(0 < len(worlds) < 300)
        modules = ModuleUniverse(universe, rings)
        for target in rings:
            exact = get_dtrss(target, rings, universe)
            exact_hts = {d.determined_ht for d in exact}
            predicted = theorem61_dtrs_token_sets(target, modules)
            predicted_hts = {ht for ht, _ in predicted}
            # Every HT the theorem predicts determinable must be
            # determinable exactly (soundness direction).  The theorem
            # can over-approximate on degenerate instances where the
            # subset count outpaces actually-proposed spends, so only
            # soundness of the exact side is asserted strictly.
            assert exact_hts <= predicted_hts | exact_hts


class TestTheorem63:
    @settings(max_examples=30, deadline=None)
    @given(config1_worlds())
    def test_observing_new_compliant_ring_preserves_uncertainty(self, world):
        """Superset-or-disjoint newcomers never pin an open token-RS pair."""
        universe, rings = world
        assume(len(rings) >= 2)
        assume(has_complete_assignment(rings))
        from repro.analysis.chain_reaction import exact_analysis

        before = exact_analysis(rings[:-1])
        after = exact_analysis(rings)
        for ring in rings[:-1]:
            before_possible = before.possible[ring.rid]
            after_possible = after.possible[ring.rid]
            if len(before_possible) > 1:
                # Theorem 6.3: still cannot *confirm* the spent token.
                assert len(after_possible) > 1


class TestTheorem64:
    @settings(max_examples=40, deadline=None)
    @given(config1_worlds(), st.floats(min_value=0.5, max_value=3.0), st.integers(1, 4))
    def test_second_config_protects_dtrss(self, world, c, ell):
        """If a ring's HTs satisfy (c, l+1), all its DTRS token sets
        satisfy (c, l)."""
        universe, rings = world
        assume(rings)
        assume(has_complete_assignment(rings))
        worlds = list(enumerate_combinations(rings, limit=300))
        assume(0 < len(worlds) < 300)
        for target in rings:
            counts = universe.ht_counts(target.tokens)
            if not ht_counts_satisfy(counts, c, second_config_ell(ell)):
                continue
            for dtrs in get_dtrss(target, rings, universe):
                if not dtrs.tokens:
                    continue
                dtrs_counts = universe.ht_counts(dtrs.tokens)
                assert ht_counts_satisfy(dtrs_counts, c, ell)


class TestTheorem66Convergence:
    def test_game_converges_within_linear_rounds(self):
        """Best response converges well inside the O(n) round bound."""
        from repro.core.game import game_select
        from repro.data.synthetic import SyntheticConfig, generate_synthetic

        for seed in range(5):
            data = generate_synthetic(
                SyntheticConfig(super_count=12, fresh_count=4, seed=seed)
            )
            modules = data.module_universe()
            target = sorted(modules.universe.tokens)[0]
            result = game_select(modules, target, c=0.8, ell=5)
            assert result.size > 0


class TestTheorem67Bounds:
    def test_poa_bound_holds_empirically(self):
        """|r_c| <= (q_M (l-1) + q_M/c + z_M) on random instances."""
        from repro.core.diversity import most_frequent_count
        from repro.core.game import game_select
        from repro.data.synthetic import SyntheticConfig, generate_synthetic

        for seed in range(5):
            data = generate_synthetic(
                SyntheticConfig(super_count=10, fresh_count=5, seed=seed)
            )
            modules = data.module_universe()
            universe = modules.universe
            c, ell = 0.8, 4
            q_m = most_frequent_count(universe.ht_counts(universe.tokens))
            z_m = max(len(ring) for ring in data.rings)
            target = sorted(universe.tokens)[seed]
            result = game_select(modules, target, c=c, ell=ell)
            bound = q_m * (ell - 1) + q_m / c + z_m
            assert result.size <= bound
