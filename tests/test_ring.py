"""Unit tests for the Ring / TokenUniverse / related-set data model."""

import pytest

from repro.core.ring import Ring, RingSet, TokenUniverse, related_ring_set


def ring(rid, tokens, seq=0, c=1.0, ell=1):
    return Ring(rid=rid, tokens=frozenset(tokens), c=c, ell=ell, seq=seq)


class TestRing:
    def test_basic_properties(self):
        r = ring("r1", {"a", "b"})
        assert len(r) == 2
        assert "a" in r
        assert "z" not in r

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            Ring(rid="r", tokens=frozenset())

    def test_invalid_c_rejected(self):
        with pytest.raises(ValueError):
            ring("r", {"a"}, c=0)

    def test_invalid_ell_rejected(self):
        with pytest.raises(ValueError):
            ring("r", {"a"}, ell=0)

    def test_intersects(self):
        assert ring("r1", {"a", "b"}).intersects(ring("r2", {"b", "c"}))
        assert not ring("r1", {"a"}).intersects(ring("r2", {"b"}))

    def test_rings_hashable_and_frozen(self):
        r = ring("r1", {"a"})
        with pytest.raises(AttributeError):
            r.rid = "r2"


class TestTokenUniverse:
    def test_add_and_lookup(self):
        u = TokenUniverse()
        u.add("t1", "h1")
        assert u.ht_of("t1") == "h1"
        assert "t1" in u
        assert len(u) == 1

    def test_construction_from_mapping(self):
        u = TokenUniverse({"t1": "h1", "t2": "h1"})
        assert u.tokens_of_ht("h1") == frozenset({"t1", "t2"})

    def test_unknown_token_raises(self):
        with pytest.raises(KeyError):
            TokenUniverse().ht_of("nope")

    def test_conflicting_registration_rejected(self):
        u = TokenUniverse({"t1": "h1"})
        with pytest.raises(ValueError):
            u.add("t1", "h2")

    def test_idempotent_registration_allowed(self):
        u = TokenUniverse({"t1": "h1"})
        u.add("t1", "h1")
        assert len(u) == 1

    def test_ht_counts(self):
        u = TokenUniverse({"t1": "h1", "t2": "h1", "t3": "h2"})
        counts = u.ht_counts(["t1", "t2", "t3"])
        assert counts == {"h1": 2, "h2": 1}

    def test_hts_property(self):
        u = TokenUniverse({"t1": "h1", "t2": "h2"})
        assert u.hts == frozenset({"h1", "h2"})

    def test_restricted_to(self):
        u = TokenUniverse({"t1": "h1", "t2": "h2", "t3": "h3"})
        sub = u.restricted_to({"t1", "t3"})
        assert sub.tokens == frozenset({"t1", "t3"})
        assert sub.ht_of("t3") == "h3"

    def test_iteration(self):
        u = TokenUniverse({"t1": "h1", "t2": "h2"})
        assert sorted(u) == ["t1", "t2"]


class TestRingSet:
    def test_add_and_index(self):
        rs = RingSet()
        r1 = ring("r1", {"a", "b"})
        rs.add(r1)
        assert rs.rings_containing("a") == [r1]
        assert rs.rings_containing("z") == []
        assert len(rs) == 1

    def test_construction_from_list(self):
        r1, r2 = ring("r1", {"a"}), ring("r2", {"a", "b"})
        rs = RingSet([r1, r2])
        assert len(rs.rings_containing("a")) == 2

    def test_tokens_in_rings(self):
        rs = RingSet([ring("r1", {"a", "b"}), ring("r2", {"c"})])
        assert rs.tokens_in_rings() == frozenset({"a", "b", "c"})

    def test_iteration_preserves_order(self):
        rings = [ring(f"r{i}", {f"t{i}"}) for i in range(5)]
        rs = RingSet(rings)
        assert list(rs) == rings


class TestRelatedRingSet:
    def test_paper_example_2(self):
        # Example 2: r4's related set is {r1, r2, r3, r5}.
        r1 = ring("r1", {"t1", "t2", "t5"}, seq=0)
        r2 = ring("r2", {"t1", "t3"}, seq=1)
        r3 = ring("r3", {"t1", "t3"}, seq=2)
        r4 = ring("r4", {"t2", "t4"}, seq=3)
        r5 = ring("r5", {"t4", "t5", "t6"}, seq=4)
        related = related_ring_set(r4, [r1, r2, r3, r5])
        assert [r.rid for r in related] == ["r1", "r2", "r3", "r5"]

    def test_disjoint_rings_excluded(self):
        r1 = ring("r1", {"a", "b"})
        far = ring("far", {"x", "y"})
        assert related_ring_set(ring("new", {"a", "z"}), [r1, far]) == [r1]

    def test_transitive_closure(self):
        r1 = ring("r1", {"a", "b"})
        r2 = ring("r2", {"b", "c"})
        r3 = ring("r3", {"c", "d"})
        related = related_ring_set(frozenset({"a"}), [r1, r2, r3])
        assert [r.rid for r in related] == ["r1", "r2", "r3"]

    def test_accepts_bare_token_set(self):
        r1 = ring("r1", {"a"})
        assert related_ring_set(frozenset({"a"}), [r1]) == [r1]

    def test_empty_pool(self):
        assert related_ring_set(frozenset({"a"}), []) == []
