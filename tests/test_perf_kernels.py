"""Cross-backend equivalence of the columnar batch kernels.

The kernel contract: verdicts are exact, per-candidate, and backend-
independent — pure-python big-int masks, numpy boolean columns, and
batching turned off entirely must all leave ``bfs_select`` (and the
per-candidate event stream it emits) byte-identical to the frozen seed
reference.  These tests pin that contract, the factorized
``extend_batch`` against the materializing ``WorldSet.extend``, the
verdict semantics against the seed feasibility check, backend
selection/override, and the deadline-abort path.
"""

import random

import pytest

from repro.core.bfs import SearchBudgetExceeded, bfs_select
from repro.core.perf import kernels
from repro.core.perf.cache import SolverCache
from repro.core.perf.kernels import (
    KERNEL_BATCH_SIZE,
    NUMPY_BACKEND,
    PYTHON_BACKEND,
    prefilter_chunk,
    resolve_backend,
    use_backend,
)
from repro.core.perf.reference import (
    _candidate_feasible_reference,
    bfs_select_reference,
)
from repro.core.perf.worlds import WorldSet
from repro.core.problem import DamsInstance, InfeasibleError
from repro.core.ring import Ring, TokenUniverse
from repro.obs import events, metrics

HAVE_NUMPY = "numpy" in kernels.available_backends()
BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def random_instance(seed, token_count=8, ht_count=4, history=2):
    rng = random.Random(seed)
    tokens = [f"t{i}" for i in range(token_count)]
    universe = TokenUniverse(
        {token: f"h{rng.randrange(ht_count)}" for token in tokens}
    )
    rings = []
    for i in range(rng.randint(0, history)):
        size = rng.randint(2, 4)
        rings.append(
            Ring(
                rid=f"r{i}",
                tokens=frozenset(rng.sample(tokens, size)),
                c=1.0,
                ell=1,
                seq=i,
            )
        )
    target = tokens[rng.randrange(token_count)]
    c = rng.choice([1.0, 2.0])
    ell = rng.choice([2, 3])
    return DamsInstance(universe, rings, target, c=c, ell=ell)


def outcomes_of(solver, instance, **kwargs):
    try:
        result = solver(instance, **kwargs)
    except InfeasibleError:
        return ("infeasible", None)
    return (
        "ok",
        (result.ring.tokens, result.mixins, result.candidates_checked),
    )


class TestBackendSelection:
    def test_resolve_names(self):
        assert resolve_backend("python") is PYTHON_BACKEND
        assert resolve_backend("off") is None
        assert resolve_backend("OFF") is None

    def test_auto_picks_python(self):
        # auto is the measured-fastest backend at realistic world
        # counts, numpy-installed or not; numpy is explicit opt-in.
        assert resolve_backend("auto") is PYTHON_BACKEND
        if HAVE_NUMPY:
            assert resolve_backend("numpy") is NUMPY_BACKEND

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_BACKEND, "python")
        assert resolve_backend() is PYTHON_BACKEND
        monkeypatch.setenv(kernels.ENV_BACKEND, "off")
        assert resolve_backend() is None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")

    def test_numpy_requested_but_missing(self, monkeypatch):
        monkeypatch.setattr(kernels, "_import_numpy", lambda: None)
        with pytest.raises(RuntimeError, match="perf"):
            resolve_backend("numpy")
        # auto degrades silently to the pure-python path instead.
        assert resolve_backend("auto") is PYTHON_BACKEND

    def test_use_backend_restores_previous(self):
        before = kernels.active_backend()
        with use_backend("off") as backend:
            assert backend is None
            assert kernels.active_backend() is None
        assert kernels.active_backend() is before

    def test_off_disables_prefiltering(self):
        instance = random_instance(0)
        cache = SolverCache(instance.universe, instance.rings)
        with use_backend("off"):
            assert prefilter_chunk(instance, cache, [("t1",)]) is None


def make_ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), c=1.0, ell=1, seq=seq)


class TestExtendBatch:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("seed", range(10))
    def test_counts_match_materialized_extend(self, backend_name, seed):
        rng = random.Random(seed)
        tokens = [f"t{i}" for i in range(9)]
        universe = TokenUniverse({t: f"h{i % 4}" for i, t in enumerate(tokens)})
        rings = [
            make_ring(f"r{i}", rng.sample(tokens, rng.randint(2, 4)), seq=i)
            for i in range(rng.randint(1, 3))
        ]
        worlds = WorldSet(rings)
        backend = resolve_backend(backend_name)
        state = backend.build_state(worlds, universe)
        candidates = [
            frozenset(rng.sample(tokens, rng.randint(1, 4))) for _ in range(8)
        ]
        extensions = state.extend_batch(candidates)
        for cand_tokens, extension in zip(candidates, extensions):
            candidate = make_ring("r_tau", cand_tokens, seq=99)
            assert extension.count == len(worlds.extend(candidate)), (
                f"extension count diverged for {sorted(cand_tokens)}"
            )

    @needs_numpy
    @pytest.mark.parametrize("seed", range(6))
    def test_numpy_masks_equal_python_masks(self, seed):
        rng = random.Random(300 + seed)
        tokens = [f"t{i}" for i in range(8)]
        universe = TokenUniverse({t: f"h{i % 3}" for i, t in enumerate(tokens)})
        rings = [
            make_ring(f"r{i}", rng.sample(tokens, rng.randint(2, 4)), seq=i)
            for i in range(rng.randint(1, 3))
        ]
        worlds = WorldSet(rings)
        py = PYTHON_BACKEND.build_state(worlds, universe)
        np_state = NUMPY_BACKEND.build_state(worlds, universe)

        def int_bits(mask):
            return {w for w in range(len(worlds)) if mask >> w & 1}

        def arr_bits(mask):
            return {int(w) for w in mask.nonzero()[0]}

        assert len(py.rows) == len(np_state.rows)
        for py_row, np_row in zip(py.rows, np_state.rows):
            assert py_row.token_masks.keys() == np_row.token_masks.keys()
            for name in py_row.token_masks:
                assert int_bits(py_row.token_masks[name]) == arr_bits(
                    np_row.token_masks[name]
                )
            assert py_row.ht_masks.keys() == np_row.ht_masks.keys()
            for ht in py_row.ht_masks:
                assert int_bits(py_row.ht_masks[ht]) == arr_bits(
                    np_row.ht_masks[ht]
                )
        assert py.presence.keys() == np_state.presence.keys()
        for name in py.presence:
            assert int_bits(py.presence[name]) == arr_bits(
                np_state.presence[name]
            )


class TestVerdictSemantics:
    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("seed", range(10))
    def test_resolved_verdicts_match_seed_feasibility(self, backend_name, seed):
        # Large histories force closures of 4+ rings: the sweep has no
        # size bound, so every verdict must be exact even there.
        instance = random_instance(1000 + seed, token_count=9, history=4)
        cache = SolverCache(instance.universe, instance.rings)
        backend = resolve_backend(backend_name)
        sigma = sorted(instance.candidate_mixins())
        from itertools import combinations

        chunk = [combo for combo in combinations(sigma, 2)][:KERNEL_BATCH_SIZE]
        verdicts = prefilter_chunk(instance, cache, chunk, backend=backend)
        assert verdicts is not None and len(verdicts) == len(chunk)
        for mixin_tuple, verdict in zip(chunk, verdicts):
            candidate = instance.make_ring(mixin_tuple)
            truth = _candidate_feasible_reference(instance, candidate)
            if verdict == "feasible":
                assert truth, f"kernel feasible but seed rejects {mixin_tuple}"
            else:
                assert verdict in ("ht", "eliminated", "dtrs")
                assert not truth, (
                    f"kernel filtered at {verdict} but seed accepts {mixin_tuple}"
                )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_every_candidate_resolves(self, backend_name):
        # The sweep is complete at any closure size — no candidate is
        # ever deferred to the per-candidate tail.
        instance = random_instance(7, history=2)
        cache = SolverCache(instance.universe, instance.rings)
        backend = resolve_backend(backend_name)
        sigma = sorted(instance.candidate_mixins())
        from itertools import combinations

        chunk = list(combinations(sigma, 2))[:KERNEL_BATCH_SIZE]
        verdicts = prefilter_chunk(instance, cache, chunk, backend=backend)
        assert verdicts is not None
        assert set(verdicts) <= {"ht", "eliminated", "dtrs", "feasible"}


class TestBfsEquivalence:
    @pytest.mark.parametrize("backend_name", BACKENDS + ["off"])
    @pytest.mark.parametrize("seed", range(8))
    def test_backend_equals_reference(self, backend_name, seed):
        instance = random_instance(seed, history=3)
        with use_backend(backend_name):
            ours = outcomes_of(bfs_select, instance)
        assert ours == outcomes_of(bfs_select_reference, instance), (
            f"backend {backend_name} diverged on seed {seed}"
        )

    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("seed", range(4))
    def test_parallel_equals_serial_per_backend(self, backend_name, seed):
        instance = random_instance(40 + seed, history=3)
        with use_backend(backend_name):
            serial = outcomes_of(bfs_select, instance)
            parallel = outcomes_of(bfs_select, instance, workers=2)
        assert parallel == serial

    @pytest.mark.parametrize("seed", range(6))
    def test_sequential_chain_identical_across_backends(self, seed):
        # Fig-4-style chains: each accepted ring joins the next
        # instance's history, compounding any verdict bug.  All
        # backends (and batching off) must produce identical chains.
        def run_chain(backend_name):
            rng = random.Random(2000 + seed)
            universe = TokenUniverse(
                {f"t{i:02d}": f"h{rng.randrange(5)}" for i in range(12)}
            )
            rings, out, consumed = [], [], set()
            with use_backend(backend_name):
                for index in range(3):
                    free = sorted(universe.tokens - consumed)
                    target = free[rng.randrange(len(free))]
                    instance = DamsInstance(
                        universe, list(rings), target, c=2.0, ell=3
                    )
                    outcome = outcomes_of(bfs_select, instance)
                    out.append(outcome)
                    if outcome[0] != "ok":
                        break
                    tokens = outcome[1][0]
                    rings.append(
                        Ring(
                            rid=f"g{index}", tokens=tokens, c=2.0, ell=3,
                            seq=index,
                        )
                    )
                    consumed.add(target)
            return out

        chains = {name: run_chain(name) for name in BACKENDS + ["off"]}
        baseline = chains["off"]
        for name, chain in chains.items():
            assert chain == baseline, f"backend {name} chain diverged"

    @pytest.mark.parametrize("seed", range(4))
    def test_candidate_events_identical_across_backends(self, seed):
        # The replay emits CandidateScanned with the same gate the
        # per-candidate path reports, so the bfs.* counters — part of
        # the deterministic view — must match with batching on or off.
        instance = random_instance(90 + seed, history=3)

        def bfs_counters(backend_name):
            with use_backend(backend_name):
                with metrics.recording() as rec:
                    outcomes_of(bfs_select, instance)
            return {
                name: value
                for name, value in events.deterministic_view(
                    rec.counters
                ).items()
                if name.startswith("bfs.")
            }

        baseline = bfs_counters("off")
        assert baseline.get("bfs.candidates")
        for name in BACKENDS:
            assert bfs_counters(name) == baseline, (
                f"backend {name} event stream diverged"
            )


class TestDeadlines:
    def blowup_instance(self):
        # 11 rings over 12 fully-shared tokens: the first candidate's
        # closure world enumeration is astronomically large.
        tokens = {f"t{i}" for i in range(12)}
        universe = TokenUniverse({t: f"h{t[1:]}" for t in tokens})
        rings = [
            Ring(rid=f"r{i}", tokens=frozenset(tokens), c=1.0, ell=1, seq=i)
            for i in range(11)
        ]
        return DamsInstance(universe, rings, "t0", c=1.0, ell=1)

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_prefilter_returns_none_on_expired_deadline(self, backend_name):
        instance = self.blowup_instance()
        cache = SolverCache(instance.universe, instance.rings)
        backend = resolve_backend(backend_name)
        verdicts = prefilter_chunk(
            instance, cache, [("t1",)], deadline=0.0, backend=backend
        )
        assert verdicts is None  # state build aborted, caller falls back

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_budget_trips_inside_candidate(self, backend_name):
        import time as time_module

        instance = self.blowup_instance()
        start = time_module.perf_counter()
        with use_backend(backend_name):
            with pytest.raises(SearchBudgetExceeded):
                bfs_select(instance, time_budget=0.3)
        assert time_module.perf_counter() - start < 5.0
