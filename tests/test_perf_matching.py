"""IncrementalMatcher vs the frozen seed matching implementations.

The matcher must answer exactly what the seed's fresh-Kuhn-per-query
functions answered, for completeness, per-ring possible-token sets and
the non-eliminated predicate — across random ring systems, forced
assignments (side information) and excluded tokens.
"""

import random

import pytest

from repro.core.perf.matching import IncrementalMatcher
from repro.core.perf.reference import (
    check_non_eliminated_reference,
    has_complete_assignment_reference,
    possible_consumed_tokens_reference,
)
from repro.core.ring import Ring


def make_ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), c=1.0, ell=1, seq=seq)


def random_rings(rng, token_count, ring_count, max_size):
    tokens = [f"t{i}" for i in range(token_count)]
    rings = []
    for i in range(ring_count):
        size = rng.randint(1, max_size)
        rings.append(make_ring(f"r{i}", rng.sample(tokens, size), seq=i))
    return rings


class TestCompleteness:
    def test_single_trivial_ring(self):
        rings = [make_ring("r0", {"a"})]
        assert IncrementalMatcher(rings).complete

    def test_overconstrained_system(self):
        # Three rings over two tokens: pigeonhole says no matching.
        rings = [make_ring(f"r{i}", {"a", "b"}, seq=i) for i in range(3)]
        matcher = IncrementalMatcher(rings)
        assert not matcher.complete
        assert matcher.possible_tokens("r0") == frozenset()

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_reference_on_random_systems(self, seed):
        rng = random.Random(seed)
        rings = random_rings(rng, token_count=8, ring_count=rng.randint(2, 6), max_size=4)
        assert IncrementalMatcher(rings).complete == has_complete_assignment_reference(
            rings
        )


class TestPossibleTokens:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_reference_per_ring(self, seed):
        rng = random.Random(100 + seed)
        rings = random_rings(rng, token_count=9, ring_count=rng.randint(2, 6), max_size=4)
        matcher = IncrementalMatcher(rings)
        for ring in rings:
            assert matcher.possible_tokens(ring.rid) == (
                possible_consumed_tokens_reference(ring, rings)
            ), f"disagreement on {ring.rid} (seed {seed})"

    @pytest.mark.parametrize("seed", range(10))
    def test_forced_side_information(self, seed):
        rng = random.Random(200 + seed)
        rings = random_rings(rng, token_count=8, ring_count=4, max_size=4)
        pinned = rings[0]
        forced = {pinned.rid: sorted(pinned.tokens)[0]}
        matcher = IncrementalMatcher(rings, forced=forced)
        for ring in rings:
            assert matcher.possible_tokens(ring.rid) == (
                possible_consumed_tokens_reference(ring, rings, forced=forced)
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_excluded_tokens(self, seed):
        rng = random.Random(300 + seed)
        rings = random_rings(rng, token_count=8, ring_count=4, max_size=4)
        excluded = frozenset(rng.sample([f"t{i}" for i in range(8)], 2))
        matcher = IncrementalMatcher(rings, excluded_tokens=excluded)
        assert matcher.complete == has_complete_assignment_reference(
            rings, excluded_tokens=excluded
        )
        if matcher.complete:
            for ring in rings:
                assert matcher.possible_tokens(ring.rid) == (
                    possible_consumed_tokens_reference(
                        ring, rings, excluded_tokens=excluded
                    )
                )


class TestNonEliminated:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_reference_predicate(self, seed):
        rng = random.Random(400 + seed)
        rings = random_rings(rng, token_count=8, ring_count=rng.randint(2, 6), max_size=4)
        matcher = IncrementalMatcher(rings)
        ours = matcher.complete and all(
            matcher.non_eliminated(ring.rid) for ring in rings
        )
        assert ours == check_non_eliminated_reference(rings)

    def test_query_mutation_keeps_matching_consistent(self):
        # Long interleaved query sequences must not corrupt the base
        # matching (queries adopt repaired matchings opportunistically).
        rng = random.Random(7)
        rings = random_rings(rng, token_count=10, ring_count=6, max_size=5)
        matcher = IncrementalMatcher(rings)
        if not matcher.complete:
            return
        for _ in range(50):
            ring = rings[rng.randrange(len(rings))]
            token = rng.choice(sorted(ring.tokens))
            expected = token in possible_consumed_tokens_reference(ring, rings)
            assert matcher.can_consume(ring.rid, token) == expected
