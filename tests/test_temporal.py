"""Tests for temporal anonymity tracking."""

from repro.analysis.temporal import anonymity_timeline, erosion_events
from repro.core.ring import Ring


def ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), seq=seq)


class TestTimeline:
    def test_single_ring_full_anonymity(self):
        rings = [ring("r1", {"a", "b", "c"})]
        timeline = anonymity_timeline(rings)
        assert len(timeline) == 1
        assert timeline[0].effective_size == 3

    def test_points_per_prefix(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"c", "d"})]
        timeline = anonymity_timeline(rings)
        # Step 1 measures 1 ring, step 2 measures both: 3 points.
        assert len(timeline) == 3
        assert [p.step for p in timeline] == [1, 2, 2]

    def test_disjoint_rings_never_degrade(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"c", "d"})]
        timeline = anonymity_timeline(rings)
        assert all(p.effective_size == 2 for p in timeline)

    def test_empty_sequence(self):
        assert anonymity_timeline([]) == []


class TestErosion:
    def test_duplicate_ring_causes_cascade_on_third(self):
        # r1 = r2 = {a, b}; r3 = {b, c} loses b the moment it appears,
        # and r3 itself is the victim of the world it entered — but the
        # earlier rings r1/r2 are not eroded (still {a, b} each).
        rings = [
            ring("r1", {"a", "b"}, seq=0),
            ring("r2", {"a", "b"}, seq=1),
            ring("r3", {"b", "c"}, seq=2),
        ]
        events = erosion_events(rings)
        victims = {e.victim_rid for e in events}
        assert "r3" not in victims  # r3 is the newcomer, not a victim
        assert not victims  # r1 and r2 keep both possibilities

    def test_side_channel_erosion_detected(self):
        # r1 = {a, b}; then r2 = {a} (a is provably spent by r2), so
        # r1 collapses to {b}.
        rings = [ring("r1", {"a", "b"}, seq=0), ring("r2", {"a"}, seq=1)]
        events = erosion_events(rings)
        assert len(events) == 1
        event = events[0]
        assert event.culprit_rid == "r2"
        assert event.victim_rid == "r1"
        assert event.before == 2
        assert event.after == 1
        assert event.fully_deanonymized

    def test_config1_sequences_produce_no_erosion(self):
        # Superset-or-disjoint proposals never erode earlier rings
        # (Theorem 6.3 empirically).
        rings = [
            ring("r1", {"a", "b"}, seq=0),
            ring("r2", {"a", "b", "c"}, seq=1),
            ring("r3", {"d", "e"}, seq=2),
        ]
        assert erosion_events(rings) == []

    def test_no_events_for_single_ring(self):
        assert erosion_events([ring("r1", {"a", "b"})]) == []
