"""Failure-injection tests: the ledger under corrupted inputs.

Every test corrupts one field of an otherwise valid block, transaction
or document and asserts the validation layer rejects it with the right
error and without mutating chain state.
"""

import json

import pytest

from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.errors import (
    DoubleSpendError,
    UnknownTokenError,
    ValidationError,
)
from repro.chain.serialization import chain_from_json, chain_to_json
from repro.chain.transaction import RingInput, Transaction
from repro.chain.wallet import Wallet


def signed_economy():
    chain = Blockchain(verify_signatures=True)
    wallet = Wallet(name="victim")
    keypairs = [wallet.derive_keypair() for _ in range(6)]
    txs = [Transaction(inputs=(), output_count=3, nonce=i) for i in range(2)]
    chain.append_block(chain.make_block(txs, timestamp=1.0))
    flat = []
    for index, tx in enumerate(txs):
        outs = tx.make_outputs(
            owners=[kp.public for kp in keypairs[index * 3 : index * 3 + 3]]
        )
        chain.register_owned_outputs(outs)
        flat.extend(outs)
    for output, keypair in zip(flat, keypairs):
        wallet.claim_output(output, keypair)
    return chain, wallet


class TestBlockCorruption:
    def test_replayed_block_rejected(self):
        chain, wallet = signed_economy()
        plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
        tx = wallet.sign_spend(chain, plan)
        block = chain.make_block([tx], timestamp=2.0)
        chain.append_block(block)
        with pytest.raises(ValidationError):
            chain.append_block(block)  # height/prev mismatch

    def test_forked_prev_hash_rejected(self):
        chain, _ = signed_economy()
        fork = Block(
            height=chain.height,
            prev_hash="f" * 64,
            timestamp=9.0,
            transactions=(),
        )
        with pytest.raises(ValidationError):
            chain.append_block(fork)

    def test_rejection_is_atomic(self):
        chain, wallet = signed_economy()
        plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
        good = wallet.sign_spend(chain, plan, nonce=0)
        bad = Transaction(
            inputs=(RingInput(ring_tokens=("ghost:0",)),), output_count=1
        )
        tokens_before = set(chain.universe.tokens)
        with pytest.raises(UnknownTokenError):
            chain.append_block(chain.make_block([good, bad], timestamp=2.0))
        # Neither transaction applied.
        assert set(chain.universe.tokens) == tokens_before
        assert chain.height == 1


class TestProofCorruption:
    def test_proof_for_different_ring_rejected(self):
        chain, wallet = signed_economy()
        token = wallet.owned_tokens()[0]
        plan = wallet.plan_spend(chain, token, c=2.0, ell=2)
        tx = wallet.sign_spend(chain, plan)
        original = tx.inputs[0]
        # Re-declare a smaller ring while keeping the old proof.
        smaller = tuple(sorted(original.ring_tokens[:-1]))
        forged = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=smaller,
                    key_image=original.key_image,
                    proof=original.proof,
                    claimed_c=original.claimed_c,
                    claimed_ell=original.claimed_ell,
                ),
            ),
            output_count=1,
        )
        with pytest.raises(ValidationError):
            chain.append_block(chain.make_block([forged], timestamp=2.0))

    def test_stolen_key_image_rejected(self):
        chain, wallet = signed_economy()
        token_a, token_b = wallet.owned_tokens()[:2]
        plan_a = wallet.plan_spend(chain, token_a, c=2.0, ell=2)
        tx_a = wallet.sign_spend(chain, plan_a, nonce=0)
        chain.append_block(chain.make_block([tx_a], timestamp=2.0))
        # Replaying the same image under a new ring must fail even with
        # a fresh valid proof for token_b... the image simply differs;
        # so instead assert the true double spend of token_a fails.
        plan_a2 = wallet.plan_spend(chain, token_a, c=2.0, ell=2)
        tx_a2 = wallet.sign_spend(chain, plan_a2, nonce=1)
        with pytest.raises(DoubleSpendError):
            chain.append_block(chain.make_block([tx_a2], timestamp=3.0))


class TestDocumentCorruption:
    def test_tampered_ring_member_fails_restore(self):
        chain, wallet = signed_economy()
        plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
        tx = wallet.sign_spend(chain, plan)
        chain.append_block(chain.make_block([tx], timestamp=2.0))
        payload = json.loads(chain_to_json(chain))
        ring_tokens = payload["blocks"][1]["transactions"][0]["inputs"][0][
            "ring_tokens"
        ]
        ring_tokens[0], ring_tokens[1] = ring_tokens[1], ring_tokens[0]
        with pytest.raises((ValidationError, ValueError)):
            chain_from_json(json.dumps(payload), verify_signatures=True)

    def test_dropped_block_fails_restore(self):
        chain, wallet = signed_economy()
        plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
        tx = wallet.sign_spend(chain, plan)
        chain.append_block(chain.make_block([tx], timestamp=2.0))
        payload = json.loads(chain_to_json(chain))
        del payload["blocks"][0]
        with pytest.raises(ValidationError):
            chain_from_json(json.dumps(payload), verify_signatures=True)

    def test_truncated_json_fails(self):
        chain, _ = signed_economy()
        document = chain_to_json(chain)
        with pytest.raises(json.JSONDecodeError):
            chain_from_json(document[: len(document) // 2])
