"""Failure-injection tests: the ledger under corrupted inputs.

Every test corrupts one field of an otherwise valid block, transaction
or document and asserts the validation layer rejects it with the right
error and without mutating chain state.
"""

import json

import pytest

from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.errors import (
    DoubleSpendError,
    UnknownTokenError,
    ValidationError,
)
from repro.chain.serialization import chain_from_json, chain_to_json
from repro.chain.transaction import RingInput, Transaction
from repro.chain.wallet import Wallet


def signed_economy():
    chain = Blockchain(verify_signatures=True)
    wallet = Wallet(name="victim")
    keypairs = [wallet.derive_keypair() for _ in range(6)]
    txs = [Transaction(inputs=(), output_count=3, nonce=i) for i in range(2)]
    chain.append_block(chain.make_block(txs, timestamp=1.0))
    flat = []
    for index, tx in enumerate(txs):
        outs = tx.make_outputs(
            owners=[kp.public for kp in keypairs[index * 3 : index * 3 + 3]]
        )
        chain.register_owned_outputs(outs)
        flat.extend(outs)
    for output, keypair in zip(flat, keypairs):
        wallet.claim_output(output, keypair)
    return chain, wallet


class TestBlockCorruption:
    def test_replayed_block_rejected(self):
        chain, wallet = signed_economy()
        plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
        tx = wallet.sign_spend(chain, plan)
        block = chain.make_block([tx], timestamp=2.0)
        chain.append_block(block)
        with pytest.raises(ValidationError):
            chain.append_block(block)  # height/prev mismatch

    def test_forked_prev_hash_rejected(self):
        chain, _ = signed_economy()
        fork = Block(
            height=chain.height,
            prev_hash="f" * 64,
            timestamp=9.0,
            transactions=(),
        )
        with pytest.raises(ValidationError):
            chain.append_block(fork)

    def test_rejection_is_atomic(self):
        chain, wallet = signed_economy()
        plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
        good = wallet.sign_spend(chain, plan, nonce=0)
        bad = Transaction(
            inputs=(RingInput(ring_tokens=("ghost:0",)),), output_count=1
        )
        tokens_before = set(chain.universe.tokens)
        with pytest.raises(UnknownTokenError):
            chain.append_block(chain.make_block([good, bad], timestamp=2.0))
        # Neither transaction applied.
        assert set(chain.universe.tokens) == tokens_before
        assert chain.height == 1


class TestProofCorruption:
    def test_proof_for_different_ring_rejected(self):
        chain, wallet = signed_economy()
        token = wallet.owned_tokens()[0]
        plan = wallet.plan_spend(chain, token, c=2.0, ell=2)
        tx = wallet.sign_spend(chain, plan)
        original = tx.inputs[0]
        # Re-declare a smaller ring while keeping the old proof.
        smaller = tuple(sorted(original.ring_tokens[:-1]))
        forged = Transaction(
            inputs=(
                RingInput(
                    ring_tokens=smaller,
                    key_image=original.key_image,
                    proof=original.proof,
                    claimed_c=original.claimed_c,
                    claimed_ell=original.claimed_ell,
                ),
            ),
            output_count=1,
        )
        with pytest.raises(ValidationError):
            chain.append_block(chain.make_block([forged], timestamp=2.0))

    def test_stolen_key_image_rejected(self):
        chain, wallet = signed_economy()
        token_a, token_b = wallet.owned_tokens()[:2]
        plan_a = wallet.plan_spend(chain, token_a, c=2.0, ell=2)
        tx_a = wallet.sign_spend(chain, plan_a, nonce=0)
        chain.append_block(chain.make_block([tx_a], timestamp=2.0))
        # Replaying the same image under a new ring must fail even with
        # a fresh valid proof for token_b... the image simply differs;
        # so instead assert the true double spend of token_a fails.
        plan_a2 = wallet.plan_spend(chain, token_a, c=2.0, ell=2)
        tx_a2 = wallet.sign_spend(chain, plan_a2, nonce=1)
        with pytest.raises(DoubleSpendError):
            chain.append_block(chain.make_block([tx_a2], timestamp=3.0))


class TestDocumentCorruption:
    def test_tampered_ring_member_fails_restore(self):
        chain, wallet = signed_economy()
        plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
        tx = wallet.sign_spend(chain, plan)
        chain.append_block(chain.make_block([tx], timestamp=2.0))
        payload = json.loads(chain_to_json(chain))
        ring_tokens = payload["blocks"][1]["transactions"][0]["inputs"][0][
            "ring_tokens"
        ]
        ring_tokens[0], ring_tokens[1] = ring_tokens[1], ring_tokens[0]
        with pytest.raises((ValidationError, ValueError)):
            chain_from_json(json.dumps(payload), verify_signatures=True)

    def test_dropped_block_fails_restore(self):
        chain, wallet = signed_economy()
        plan = wallet.plan_spend(chain, wallet.owned_tokens()[0], c=2.0, ell=2)
        tx = wallet.sign_spend(chain, plan)
        chain.append_block(chain.make_block([tx], timestamp=2.0))
        payload = json.loads(chain_to_json(chain))
        del payload["blocks"][0]
        with pytest.raises(ValidationError):
            chain_from_json(json.dumps(payload), verify_signatures=True)

    def test_truncated_json_fails(self):
        chain, _ = signed_economy()
        document = chain_to_json(chain)
        with pytest.raises(json.JSONDecodeError):
            chain_from_json(document[: len(document) // 2])


# ---------------------------------------------------------------------------
# FaultPlan-driven chaos: the resilience layer under injected failures.
# Guarantees under test: never a hang, never an unverified ring.
# ---------------------------------------------------------------------------

import os

from repro.core.bfs import bfs_select
from repro.core.diversity import ht_counts_satisfy
from repro.core.perf.cache import SolverCache
from repro.core.perf.parallel import WorkerLost, scan_candidates
from repro.core.problem import DamsInstance
from repro.core.ring import TokenUniverse
from repro.data.persistence import load_dataset, save_dataset
from repro.obs.clock import ManualClock
from repro.resilience.checkpoint import CheckpointError, load_checkpoint
from repro.resilience.faults import FaultPlan, FaultSpec, InjectedIOError, injecting
from repro.resilience.ladder import RUNGS, ladder_select, verify_ring
from repro.resilience.supervisor import RetryPolicy

CHAOS_WORKERS = int(os.environ.get("REPRO_CHAOS_WORKERS", "2"))


def dams_instance(tokens=14, hts=5, c=2.0, ell=3, seed=0, rings=()):
    import random

    rng = random.Random(seed)
    universe = TokenUniverse(
        {f"t{i}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )
    return DamsInstance(universe, list(rings), "t0", c=c, ell=ell)


def chunk_stream(instance, size):
    from itertools import combinations

    return combinations(sorted(instance.candidate_mixins()), size)


class TestWorkerDeathChaos:
    def test_supervised_scan_recovers_from_worker_death(self):
        """A worker killed mid-stratum is requeued; result equals serial."""
        instance = dams_instance()
        baseline = bfs_select(instance)
        plan = FaultPlan([
            FaultSpec(site="parallel.worker_chunk", action="die",
                      at_index=0, on_attempt=0),
        ])
        policy = RetryPolicy(max_retries=2, base_delay=0.01,
                             hang_timeout=10.0, death_grace=0.2)
        with injecting(plan):
            result = bfs_select(
                instance, workers=CHAOS_WORKERS, supervision=policy
            )
        assert result.ring.tokens == baseline.ring.tokens
        assert result.mixins == baseline.mixins
        assert result.candidates_checked == baseline.candidates_checked

    def test_unsupervised_scan_raises_worker_lost_not_hang(self):
        """Without retries the loss surfaces as a typed error (the seed
        behaviour was an indefinite hang on Pool.imap)."""
        instance = dams_instance()
        plan = FaultPlan([
            FaultSpec(site="parallel.worker_chunk", action="die",
                      at_index=0, on_attempt=0),
        ])
        with injecting(plan):
            with pytest.raises(WorkerLost) as excinfo:
                scan_candidates(
                    instance, chunk_stream(instance, 2), CHAOS_WORKERS,
                    chunk_size=4, hang_timeout=5.0,
                )
        assert excinfo.value.chunk_index == 0
        assert excinfo.value.attempts == 1

    def test_retries_exhausted_raises_worker_lost(self):
        """A chunk that dies on every attempt gives up with the typed
        error after max_retries + 1 attempts."""
        instance = dams_instance()
        plan = FaultPlan([
            FaultSpec(site="parallel.worker_chunk", action="die",
                      at_index=0, on_attempt=attempt, max_fires=None)
            for attempt in range(3)
        ])
        policy = RetryPolicy(max_retries=1, base_delay=0.01,
                             hang_timeout=5.0, death_grace=0.2)
        with injecting(plan):
            with pytest.raises(WorkerLost) as excinfo:
                bfs_select(
                    instance, workers=CHAOS_WORKERS, supervision=policy
                )
        assert excinfo.value.attempts == 2


class TestBudgetChaos:
    def test_budget_trip_mid_sweep_degrades_verified(self):
        """A slow-check fault trips the budget inside the DTRS sweep;
        the ladder steps down and the emitted ring is re-verified."""
        instance = dams_instance()
        plan = FaultPlan([
            FaultSpec(site="bfs.candidate", action="delay",
                      at_hit=1, payload=0.1),
        ])
        with injecting(plan):
            outcome = ladder_select(instance, time_budget=0.05)
        assert outcome.degraded
        assert outcome.trigger == "SearchBudgetExceeded"
        assert outcome.verified == ("diversity", "non_eliminated", "immutability")
        counts = instance.universe.ht_counts(outcome.result.tokens)
        assert ht_counts_satisfy(counts, outcome.claimed_c, outcome.claimed_ell)

    def test_worker_lost_degrades_through_ladder(self):
        """An unrecoverable worker loss is a degradation trigger too."""
        instance = dams_instance()
        plan = FaultPlan([
            FaultSpec(site="parallel.worker_chunk", action="die",
                      at_index=0, on_attempt=attempt, max_fires=None)
            for attempt in range(2)
        ])
        policy = RetryPolicy(max_retries=0, base_delay=0.01,
                             hang_timeout=5.0, death_grace=0.2)
        with injecting(plan):
            outcome = ladder_select(
                instance, workers=CHAOS_WORKERS, supervision=policy
            )
        assert outcome.degraded
        assert outcome.trigger == "WorkerLost"
        verify_ring(instance, outcome.result.tokens)


class TestCheckpointChaos:
    def test_corrupted_checkpoint_rejected(self, tmp_path):
        instance = dams_instance(c=1.0, ell=2, hts=99)
        path = tmp_path / "cp.json"
        # ell=2 with all-singleton HTs makes the first stratum
        # infeasible (1 < 1.0 * 1 fails), so a checkpoint is written.
        bfs_select(instance, checkpoint_path=path)
        text = path.read_text()
        tampered = text.replace('"next_size": 2', '"next_size": 1')
        path.write_text(tampered)
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)
        with pytest.raises(CheckpointError):
            bfs_select(instance, resume_from=path)

    def test_checkpoint_for_other_instance_rejected(self, tmp_path):
        instance = dams_instance(c=1.0, ell=2, hts=99)
        path = tmp_path / "cp.json"
        bfs_select(instance, checkpoint_path=path)
        other = dams_instance(c=1.0, ell=2, hts=99, tokens=15)
        with pytest.raises(CheckpointError, match="different"):
            bfs_select(other, resume_from=path)

    def test_io_fault_on_resume_is_a_checkpoint_error(self, tmp_path):
        instance = dams_instance(c=1.0, ell=2, hts=99)
        path = tmp_path / "cp.json"
        bfs_select(instance, checkpoint_path=path)
        path.unlink()
        with pytest.raises(CheckpointError):
            bfs_select(instance, resume_from=path)


class TestCacheChaos:
    def test_corrupted_cache_entries_do_not_change_result(self):
        """Dropping world-cache entries on every lookup only costs time."""
        instance = dams_instance()
        baseline = bfs_select(instance)
        plan = FaultPlan([
            FaultSpec(site="cache.worlds", action="corrupt", max_fires=None),
        ])
        cache = SolverCache(instance.universe, instance.rings)
        with injecting(plan):
            result = bfs_select(instance, cache=cache)
        assert result.ring.tokens == baseline.ring.tokens
        assert result.candidates_checked == baseline.candidates_checked
        assert cache.stats.worlds_hits == 0  # every lookup was corrupted


class TestChainFaults:
    def test_dataset_load_io_error(self, tmp_path):
        instance = dams_instance()
        path = save_dataset(tmp_path / "d.json", instance.universe, [])
        plan = FaultPlan([FaultSpec(site="chain.load", action="io_error")])
        with injecting(plan):
            with pytest.raises(InjectedIOError):
                load_dataset(path)
            # max_fires=1: the retry succeeds.
            universe, rings, _ = load_dataset(path)
        assert universe.tokens == instance.universe.tokens

    def test_clock_skew_shifts_block_timestamps(self):
        clock = ManualClock(start=100.0, step=0.0)
        chain = Blockchain(verify_signatures=False, clock=clock)
        plan = FaultPlan([
            FaultSpec(site="chain.clock", action="skew", payload=7.5),
        ])
        with injecting(plan):
            skewed = chain.make_block([], timestamp=None)
        straight = chain.make_block([], timestamp=None)
        assert skewed.timestamp == 107.5
        assert straight.timestamp == 100.0


class TestLadderRungProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("rung", RUNGS)
    def test_every_rung_output_satisfies_def5(self, rung, seed):
        """Property: any ring a rung emits passes the Definition 5
        checks at its claimed requirement, for every rung and seed."""
        import random

        instance = dams_instance(seed=seed)
        try:
            outcome = ladder_select(
                instance, rungs=(rung,), rng=random.Random(seed)
            )
        except Exception:
            return  # an honest refusal is fine; emitting unverified is not
        assert outcome.rung == rung
        counts = instance.universe.ht_counts(outcome.result.tokens)
        assert ht_counts_satisfy(counts, outcome.claimed_c, outcome.claimed_ell)
        if (outcome.claimed_c, outcome.claimed_ell) == (instance.c, instance.ell):
            verify_ring(instance, outcome.result.tokens)
