"""Unit tests for stealth addresses (one-time outputs + scanning)."""

from repro.crypto.lsag import sign, verify
from repro.crypto.stealth import make_receiver, pay_to_address


class TestPaymentScan:
    def test_receiver_finds_own_output(self):
        receiver = make_receiver(seed="alice")
        output, _ = pay_to_address(receiver.address, output_index=0)
        keypair = receiver.scan(output)
        assert keypair is not None
        assert keypair.public.point == output.one_time_key.point

    def test_stranger_does_not_match(self):
        alice = make_receiver(seed="alice")
        bob = make_receiver(seed="bob")
        output, _ = pay_to_address(alice.address, output_index=0)
        assert bob.scan(output) is None

    def test_outputs_unlinkable(self):
        # Two payments to the same address yield different one-time keys.
        receiver = make_receiver(seed="alice")
        out_a, _ = pay_to_address(receiver.address, output_index=0)
        out_b, _ = pay_to_address(receiver.address, output_index=0)
        assert out_a.one_time_key.point != out_b.one_time_key.point

    def test_shared_tx_key_across_outputs(self):
        receiver = make_receiver(seed="alice")
        out_0, r = pay_to_address(receiver.address, output_index=0)
        out_1, r2 = pay_to_address(receiver.address, output_index=1, tx_private_key=r)
        assert r == r2
        assert out_0.tx_public_key == out_1.tx_public_key
        assert out_0.one_time_key.point != out_1.one_time_key.point
        assert receiver.scan(out_0) is not None
        assert receiver.scan(out_1) is not None

    def test_wrong_index_does_not_scan(self):
        from repro.crypto.stealth import OneTimeOutput

        receiver = make_receiver(seed="alice")
        output, _ = pay_to_address(receiver.address, output_index=0)
        shifted = OneTimeOutput(
            one_time_key=output.one_time_key,
            tx_public_key=output.tx_public_key,
            output_index=1,
        )
        assert receiver.scan(shifted) is None


class TestRecoveredKeySigns:
    def test_scanned_keypair_works_in_ring_signature(self):
        receiver = make_receiver(seed="alice")
        output, _ = pay_to_address(receiver.address, output_index=0)
        keypair = receiver.scan(output)
        assert keypair is not None
        decoys = [make_receiver(seed=f"d{i}") for i in range(3)]
        ring = []
        for decoy in decoys:
            decoy_out, _ = pay_to_address(decoy.address, output_index=0)
            ring.append(decoy_out.one_time_key)
        ring.append(keypair.public)
        proof = sign(b"spend it", ring, keypair)
        assert verify(b"spend it", proof)


class TestDeterminism:
    def test_seeded_receiver_is_deterministic(self):
        a = make_receiver(seed="carol")
        b = make_receiver(seed="carol")
        assert a.address.encode() == b.address.encode()

    def test_unseeded_receivers_differ(self):
        assert make_receiver().address.encode() != make_receiver().address.encode()

    def test_address_encoding_length(self):
        assert len(make_receiver(seed="x").address.encode()) == 64
