"""Unit tests for chain-reaction attacks (cascade and exact)."""

from repro.analysis.chain_reaction import cascade_attack, exact_analysis
from repro.core.ring import Ring


def ring(rid, tokens, seq=0):
    return Ring(rid=rid, tokens=frozenset(tokens), seq=seq)


class TestCascade:
    def test_classic_zero_mixin_cascade(self):
        # r1 = {a} deanonymized; removing a shrinks r2 = {a, b} to {b},
        # which in turn shrinks r3 = {b, c} to {c}.
        rings = [ring("r1", {"a"}), ring("r2", {"a", "b"}), ring("r3", {"b", "c"})]
        result = cascade_attack(rings)
        assert result.deanonymized == {"r1": "a", "r2": "b", "r3": "c"}
        assert result.deanonymization_rate == 1.0

    def test_no_cascade_without_singleton(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"b", "c"})]
        result = cascade_attack(rings)
        assert result.deanonymized == {}
        assert result.effective_ring_size("r1") == 2

    def test_side_information_seeds_cascade(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"b", "c"})]
        result = cascade_attack(rings, side_information={"r1": "b"})
        assert result.deanonymized == {"r1": "b", "r2": "c"}

    def test_eliminated_view(self):
        rings = [ring("r1", {"a"}), ring("r2", {"a", "b"})]
        result = cascade_attack(rings)
        assert result.eliminated["r2"] == frozenset({"a"})

    def test_cascade_weaker_than_exact(self):
        # Two identical rings: cascade sees nothing (no singleton), but
        # the pair is tight so a third overlapping ring is constrained.
        rings = [
            ring("r1", {"a", "b"}),
            ring("r2", {"a", "b"}),
            ring("r3", {"b", "c"}),
        ]
        weak = cascade_attack(rings)
        strong = exact_analysis(rings)
        assert weak.deanonymized == {}
        assert strong.deanonymized["r3"] == "c"


class TestExact:
    def test_paper_example_1_second_solution(self):
        rings = [
            ring("r1", {"t1", "t2"}),
            ring("r2", {"t1", "t2"}),
            ring("r3", {"t2", "t3"}),
        ]
        result = exact_analysis(rings)
        assert result.deanonymized["r3"] == "t3"
        assert result.possible["r1"] == frozenset({"t1", "t2"})

    def test_independent_rings_untouched(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"c", "d"})]
        result = exact_analysis(rings)
        assert result.deanonymized == {}
        assert result.possible["r1"] == frozenset({"a", "b"})

    def test_side_information_propagates(self):
        rings = [ring("r1", {"a", "b"}), ring("r2", {"a", "b"})]
        result = exact_analysis(rings, side_information={"r1": "a"})
        assert result.deanonymized == {"r1": "a", "r2": "b"}

    def test_contradictory_side_information_empties(self):
        rings = [ring("r1", {"a"}), ring("r2", {"a"})]
        result = exact_analysis(rings)
        assert result.possible["r1"] == frozenset()

    def test_rate_partial(self):
        rings = [
            ring("r1", {"a"}),
            ring("r2", {"b", "c"}),
        ]
        result = exact_analysis(rings)
        assert result.deanonymization_rate == 0.5

    def test_exact_dominates_cascade(self):
        import random

        rng = random.Random(4)
        tokens = [f"t{i}" for i in range(8)]
        rings = []
        for i in range(6):
            size = rng.randint(1, 3)
            rings.append(ring(f"r{i}", set(rng.sample(tokens, size)), seq=i))
        weak = cascade_attack(rings)
        strong = exact_analysis(rings)
        for rid in weak.possible:
            assert strong.possible[rid] <= weak.possible[rid]
