"""Unit tests for the resilience layer (repro.resilience).

The chaos scenarios (faults actually firing inside the pipeline) live
in ``tests/test_failure_injection.py``; this module covers the layer's
own contracts: fault-plan serialization and deterministic firing,
checkpoint round-trips and resume equivalence, the degradation ladder's
ordering and fail-closed semantics, and the priced disabled-path
overhead guard (< 3%, same methodology as ``tests/test_obs_overhead``).
"""

import random
import time

import pytest

from repro.core.bfs import SearchBudgetExceeded, bfs_select
from repro.core.problem import DamsInstance, InfeasibleError
from repro.core.ring import Ring, TokenUniverse
from repro.obs import metrics
from repro.resilience.checkpoint import (
    BfsCheckpoint,
    CheckpointError,
    instance_fingerprint,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active,
    injecting,
)
from repro.resilience.ladder import (
    RUNGS,
    ConstraintViolation,
    DegradedResult,
    ladder_select,
)


def dams_instance(tokens=14, hts=5, c=2.0, ell=3, seed=0, rings=()):
    rng = random.Random(seed)
    universe = TokenUniverse(
        {f"t{i}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )
    return DamsInstance(universe, list(rings), "t0", c=c, ell=ell)


def staircase_instance():
    """First stratum infeasible, second feasible: checkpoints happen."""
    ht = {"t0": "h0", "t1": "h1", "t2": "h2", "t3": "h3"}
    return DamsInstance(TokenUniverse(ht), [], "t0", c=1.0, ell=2)


class TestFaultPlanSerialization:
    def test_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec(site="bfs.candidate", action="delay",
                          at_hit=3, payload=0.5),
                FaultSpec(site="parallel.worker_chunk", action="die",
                          at_index=1, on_attempt=0),
                FaultSpec(site="cache.worlds", action="corrupt",
                          probability=0.25, max_fires=None),
            ],
            seed=7,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.specs == plan.specs
        assert restored.seed == plan.seed

    def test_save_load(self, tmp_path):
        plan = FaultPlan([FaultSpec(site="chain.load", action="io_error")])
        path = plan.save(tmp_path / "plan.json")
        assert FaultPlan.load(path).specs == plan.specs

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError, match="version"):
            FaultPlan.from_dict({"version": 99, "faults": []})

    def test_malformed_spec_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan.from_dict(
                {"version": 1, "faults": [{"site": "x", "bogus": True}]}
            )

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(site="bfs.candidate", action="explode")


class TestFaultPlanDeterminism:
    def test_at_hit_fires_exactly_once(self):
        plan = FaultPlan(
            [FaultSpec(site="s", action="error", at_hit=2)]
        )
        assert plan.check("s") is None
        with pytest.raises(InjectedFault):
            plan.check("s")
        for _ in range(5):
            assert plan.check("s") is None  # max_fires=1 caps it

    def test_probability_stream_is_seed_deterministic(self):
        def fire_pattern(seed):
            plan = FaultPlan(
                [FaultSpec(site="s", action="corrupt",
                           probability=0.5, max_fires=None)],
                seed=seed,
            )
            return [plan.check("s") is not None for _ in range(64)]

        assert fire_pattern(1) == fire_pattern(1)
        assert fire_pattern(1) != fire_pattern(2)

    def test_at_index_ignores_other_indices_and_attempts(self):
        plan = FaultPlan(
            [FaultSpec(site="s", action="error", at_index=3, on_attempt=0)]
        )
        assert plan.check("s", index=2, attempt=0) is None
        assert plan.check("s", index=3, attempt=1) is None
        with pytest.raises(InjectedFault):
            plan.check("s", index=3, attempt=0)

    def test_slot_disabled_by_default(self):
        assert active() is None
        plan = FaultPlan()
        with injecting(plan):
            assert active() is plan
        assert active() is None


class TestCheckpointRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        checkpoint = BfsCheckpoint(
            fingerprint="f" * 64, next_size=4, candidates_checked=1351,
            elapsed=0.82, cache_keys=((0,), (0, 1)),
        )
        path = save_checkpoint(tmp_path / "cp.json", checkpoint)
        assert load_checkpoint(path) == checkpoint

    def test_fingerprint_covers_requirement_and_history(self):
        base = dams_instance()
        same = dams_instance()
        assert instance_fingerprint(base) == instance_fingerprint(same)
        harder = dams_instance(ell=4)
        assert instance_fingerprint(base) != instance_fingerprint(harder)
        ring = Ring(rid="r0", tokens=frozenset({"t1", "t2"}), c=1.0,
                    ell=1, seq=0)
        with_history = dams_instance(rings=[ring])
        assert instance_fingerprint(base) != instance_fingerprint(with_history)

    def test_missing_checksum_rejected(self, tmp_path):
        checkpoint = BfsCheckpoint(
            fingerprint="f" * 64, next_size=2, candidates_checked=3,
            elapsed=0.1,
        )
        path = save_checkpoint(tmp_path / "cp.json", checkpoint)
        import json

        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_not_json_rejected(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("not json {")
        with pytest.raises(CheckpointError, match="JSON"):
            load_checkpoint(path)


class TestCheckpointResume:
    def test_resume_reproduces_uninterrupted_result(self, tmp_path):
        instance = staircase_instance()
        baseline = bfs_select(instance)
        path = tmp_path / "cp.json"
        bfs_select(instance, checkpoint_path=path)
        resumed = bfs_select(instance, resume_from=path)
        assert resumed.ring.tokens == baseline.ring.tokens
        assert resumed.mixins == baseline.mixins
        assert resumed.candidates_checked == baseline.candidates_checked

    def test_resume_accepts_in_memory_checkpoint(self, tmp_path):
        instance = staircase_instance()
        path = tmp_path / "cp.json"
        bfs_select(instance, checkpoint_path=path)
        checkpoint = load_checkpoint(path)
        baseline = bfs_select(instance)
        resumed = bfs_select(instance, resume_from=checkpoint)
        assert resumed.ring.tokens == baseline.ring.tokens
        assert resumed.candidates_checked == baseline.candidates_checked

    def test_budget_trip_carries_checkpoint_path(self, tmp_path):
        # All-singleton universe at c=0.1: every stratum is walked and
        # exhausted (1 < 0.1 * 7 never holds), checkpointing each time.
        ht = {f"t{i}": f"h{i}" for i in range(8)}
        instance = DamsInstance(TokenUniverse(ht), [], "t0", c=0.1, ell=2)
        path = tmp_path / "cp.json"
        with pytest.raises(InfeasibleError):
            bfs_select(instance, checkpoint_path=path)
        assert path.exists()
        instance2 = staircase_instance()
        path2 = tmp_path / "cp2.json"
        try:
            bfs_select(instance2, time_budget=0.0, checkpoint_path=path2)
        except SearchBudgetExceeded as exc:
            assert exc.checkpoint_path is None  # nothing completed yet
        else:  # pragma: no cover - zero budget must trip
            pytest.fail("expected SearchBudgetExceeded")

    def test_parallel_resume_matches_serial(self, tmp_path):
        instance = staircase_instance()
        baseline = bfs_select(instance)
        path = tmp_path / "cp.json"
        bfs_select(instance, checkpoint_path=path)
        resumed = bfs_select(instance, resume_from=path, workers=2)
        assert resumed.ring.tokens == baseline.ring.tokens
        assert resumed.candidates_checked == baseline.candidates_checked


class TestLadder:
    def test_exact_success_is_not_degraded(self):
        outcome = ladder_select(dams_instance())
        assert isinstance(outcome, DegradedResult)
        assert outcome.rung == "exact"
        assert not outcome.degraded
        assert outcome.trigger is None
        assert outcome.claimed_c == 2.0 and outcome.claimed_ell == 3

    def test_budget_trip_steps_down_in_order(self):
        outcome = ladder_select(dams_instance(), time_budget=0.0)
        assert outcome.degraded
        assert outcome.rung in RUNGS[1:]
        assert RUNGS.index(outcome.rung) >= 1

    def test_exact_infeasibility_propagates(self):
        # Only one HT: no ell=2 requirement can ever hold, and the
        # exact rung's proof must not be papered over by degradation.
        universe = TokenUniverse({f"t{i}": "h0" for i in range(4)})
        instance = DamsInstance(universe, [], "t0", c=1.0, ell=2)
        with pytest.raises(InfeasibleError):
            ladder_select(instance)

    def test_unknown_rung_rejected(self):
        with pytest.raises(ValueError, match="unknown ladder rung"):
            ladder_select(dams_instance(), rungs=("warp",))

    def test_relaxation_rung_claims_relaxed_requirement(self):
        # Force the relaxation rung; whatever it returns must be
        # labeled with the claim it verified at.
        try:
            outcome = ladder_select(
                dams_instance(), rungs=("relaxation",), rng=random.Random(0)
            )
        except (InfeasibleError, ConstraintViolation):
            return  # refusal is an acceptable outcome
        assert outcome.rung == "relaxation"
        if outcome.relaxation_level > 0:
            assert (outcome.claimed_c, outcome.claimed_ell) != (2.0, 3)


class TestDisabledFaultOverhead:
    """Priced guard: faults-disabled cost < 3% of the BFS baseline.

    Same methodology as ``tests/test_obs_overhead``: measure the
    workload, count the guarded-site executions, microbenchmark one
    disabled guard (``faults.active()`` + ``is None``), and assert the
    priced total stays under budget.
    """

    OVERHEAD_BUDGET = 0.03

    def _workload(self) -> float:
        rng = random.Random(3)
        universe = TokenUniverse(
            {f"t{i:02d}": f"h{rng.randrange(10)}" for i in range(20)}
        )
        rings = []
        consumed = set()
        start = time.perf_counter()
        for index in range(6):
            free = sorted(universe.tokens - consumed)
            target = free[rng.randrange(len(free))]
            instance = DamsInstance(universe, list(rings), target,
                                    c=5.0, ell=4)
            result = bfs_select(instance)
            rings.append(Ring(rid=f"r{index}", tokens=result.ring.tokens,
                              c=5.0, ell=4, seq=index))
            consumed.add(target)
        return time.perf_counter() - start

    @staticmethod
    def _price_disabled_guard(iterations: int = 200_000) -> float:
        assert active() is None
        probe = active
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(iterations):
                probe() is None
            best = min(best, time.perf_counter() - start)
        return best / iterations

    def test_disabled_fault_guards_under_three_percent(self):
        baseline_s = self._workload()
        with metrics.recording() as rec:
            self._workload()
        counters = rec.counters

        # One faults.active() per candidate check plus one per cache
        # lookup; strata/setup slack folded into a flat overcount.
        guard_fires = (
            counters["bfs.candidates"]
            + counters.get("cache.worlds_hits", 0)
            + counters.get("cache.worlds_misses", 0)
            + 2_000
        )
        guard_upper = 2 * guard_fires

        per_guard_s = self._price_disabled_guard()
        priced_overhead_s = guard_upper * per_guard_s
        assert priced_overhead_s < self.OVERHEAD_BUDGET * baseline_s, (
            f"disabled fault guards priced at {priced_overhead_s * 1e3:.2f}ms "
            f"({guard_upper} fires x {per_guard_s * 1e9:.0f}ns) vs "
            f"{self.OVERHEAD_BUDGET:.0%} of the {baseline_s:.3f}s baseline"
        )
