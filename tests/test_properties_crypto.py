"""Property-based tests (hypothesis) over the crypto substrate.

These are slower than the core properties, so example counts are kept
modest; each property still covers the full input space shape.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.commitment import commit, commitments_balance
from repro.crypto.ed25519 import (
    G,
    IDENTITY,
    L,
    compress,
    decompress,
    multi_scalar_mult,
    point_add,
    scalar_mult,
)
from repro.crypto.keys import keypair_from_seed
from repro.crypto.lsag import is_linked, sign, verify
from repro.crypto.mlsag import mlsag_sign, mlsag_verify
from repro.crypto.stealth import make_receiver, pay_to_address

scalars = st.integers(min_value=0, max_value=L - 1)
small_scalars = st.integers(min_value=0, max_value=2**64)


class TestGroupProperties:
    @settings(max_examples=20, deadline=None)
    @given(small_scalars, small_scalars)
    def test_scalar_mult_is_homomorphic(self, a, b):
        left = scalar_mult((a + b) % L, G)
        right = point_add(scalar_mult(a, G), scalar_mult(b, G))
        assert left == right

    @settings(max_examples=20, deadline=None)
    @given(small_scalars)
    def test_compress_round_trip(self, k):
        point = scalar_mult(k, G)
        assert decompress(compress(point)) == point

    @settings(max_examples=10, deadline=None)
    @given(small_scalars, small_scalars, small_scalars)
    def test_multi_scalar_matches_naive(self, a, b, c):
        p = scalar_mult(7, G)
        q = scalar_mult(11, G)
        expected = point_add(
            point_add(scalar_mult(a, G), scalar_mult(b, p)), scalar_mult(c, q)
        )
        assert multi_scalar_mult([(a, G), (b, p), (c, q)]) == expected

    @settings(max_examples=20, deadline=None)
    @given(small_scalars)
    def test_order_divides_out(self, k):
        assert scalar_mult(k * L, G) == IDENTITY


class TestCommitmentProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=0, max_value=2**32),
    )
    def test_split_always_balances(self, amount_a, amount_b):
        total, b0 = commit(amount_a + amount_b)
        out_a, b1 = commit(amount_a)
        out_b, b2 = commit(amount_b)
        assert commitments_balance([total], [out_a, out_b], (b0 - b1 - b2) % L)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=1, max_value=2**32),
    )
    def test_imbalance_always_detected(self, amount, extra):
        incoming, b0 = commit(amount)
        outgoing, b1 = commit(amount + extra)
        assert not commitments_balance([incoming], [outgoing], (b0 - b1) % L)


class TestRingSignatureProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=4),
        st.binary(min_size=0, max_size=64),
    )
    def test_sign_verify_any_position(self, size, position, message):
        position %= size
        signer = keypair_from_seed("prop-signer")
        ring = [keypair_from_seed(f"prop-decoy-{i}").public for i in range(size - 1)]
        ring.insert(position, signer.public)
        proof = sign(message, ring, signer)
        assert verify(message, proof)

    @settings(max_examples=6, deadline=None)
    @given(st.binary(min_size=1, max_size=32), st.binary(min_size=1, max_size=32))
    def test_linkability_is_key_based(self, msg_a, msg_b):
        signer = keypair_from_seed("prop-link")
        ring = [signer.public] + [
            keypair_from_seed(f"prop-l{i}").public for i in range(2)
        ]
        assert is_linked(sign(msg_a, ring, signer), sign(msg_b, ring, signer))

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=3))
    def test_mlsag_round_trip(self, columns, layers):
        signers = [keypair_from_seed(f"prop-ml{k}") for k in range(layers)]
        ring = []
        for j in range(columns):
            if j == columns - 1:
                ring.append([kp.public for kp in signers])
            else:
                ring.append(
                    [keypair_from_seed(f"prop-md{j}-{k}").public for k in range(layers)]
                )
        proof = mlsag_sign(b"prop", ring, signers)
        assert mlsag_verify(b"prop", proof)


class TestStealthProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.text(min_size=1, max_size=12), st.integers(min_value=0, max_value=7))
    def test_owner_scans_stranger_does_not(self, seed, index):
        owner = make_receiver(seed=f"owner-{seed}")
        stranger = make_receiver(seed=f"stranger-{seed}")
        output, _ = pay_to_address(owner.address, output_index=index)
        assert owner.scan(output) is not None
        assert stranger.scan(output) is None

    @settings(max_examples=10, deadline=None)
    @given(st.text(min_size=1, max_size=12))
    def test_recovered_key_controls_output(self, seed):
        owner = make_receiver(seed=seed)
        output, _ = pay_to_address(owner.address, output_index=0)
        keypair = owner.scan(output)
        assert keypair is not None
        assert keypair.public.point == output.one_time_key.point
