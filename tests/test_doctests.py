"""Run the public-API doctests as part of tier 1.

The docstring examples on the entry points users actually call
(`bfs_select`, `exact_analysis`, `TokenMagicConfig`, `ladder_select`,
the selection service) are executable documentation — this harness
keeps them true.  Every module listed here must contain at least one
doctest; a module that silently loses its examples fails the count
check rather than passing vacuously.
"""

import doctest

import pytest

import repro.analysis.chain_reaction
import repro.core.bfs
import repro.resilience.ladder
import repro.service.daemon
import repro.service.partition
import repro.service.protocol
import repro.tokenmagic.framework

DOCUMENTED_MODULES = [
    repro.core.bfs,
    repro.analysis.chain_reaction,
    repro.tokenmagic.framework,
    repro.resilience.ladder,
    repro.service.daemon,
    repro.service.partition,
    repro.service.protocol,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__
)
def test_public_api_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
