"""The service contract: it changes *when* work happens, never *what*.

Selections produced through the daemon — in-process, over a unix
socket, or through a `python -m repro.cli serve` subprocess speaking
JSONL on stdio — must be byte-identical to direct
:func:`repro.core.bfs.bfs_select` / :func:`ladder_select` calls on the
same instance at the same seed, warm cache or not.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
import threading
from pathlib import Path

from repro.core.bfs import bfs_select
from repro.core.problem import DamsInstance
from repro.core.ring import Ring, TokenUniverse
from repro.resilience.ladder import ladder_select
from repro.service import (
    SelectionService,
    SelectRequest,
    ServiceClient,
    ServiceConfig,
    serve_socket,
)

SRC = Path(__file__).resolve().parent.parent / "src"


def fig4_universe(tokens: int = 14, hts: int = 6, seed: int = 3) -> TokenUniverse:
    """Mirror of the CLI's synthetic snapshot (`repro.cli serve` flags)."""
    rng = random.Random(seed)
    return TokenUniverse(
        {f"t{i:02d}": f"h{rng.randrange(hts)}" for i in range(tokens)}
    )


def seeded_history(universe: TokenUniverse) -> list[Ring]:
    """A deterministic two-ring history so closures are non-trivial."""
    tokens = sorted(universe.tokens)
    return [
        Ring("r0", frozenset(tokens[0:4]), c=2.0, ell=2, seq=0),
        Ring("r1", frozenset(tokens[2:6]), c=2.0, ell=2, seq=1),
    ]


TARGETS = ("t06", "t07", "t09", "t11")


def test_service_exact_matches_direct_bfs_select_per_target():
    universe = fig4_universe()
    hist = seeded_history(universe)
    direct = {
        target: bfs_select(
            DamsInstance(universe, list(hist), target, c=2.0, ell=2)
        )
        for target in TARGETS
    }
    with SelectionService(universe, hist) as service:
        for target in TARGETS:
            response = service.submit_wait(
                SelectRequest(
                    request_id=target, target=target, c=2.0, ell=2,
                    mode="exact",
                ),
                60.0,
            )
            assert response.status == "ok", response.detail
            assert sorted(response.tokens) == sorted(direct[target].ring.tokens)
            assert sorted(response.mixins) == sorted(direct[target].mixins)
            assert (
                response.candidates_checked
                == direct[target].candidates_checked
            )


def test_service_ladder_matches_direct_ladder_select_at_equal_seed():
    universe = fig4_universe()
    hist = seeded_history(universe)
    with SelectionService(universe, hist) as service:
        for target in TARGETS:
            for seed in (0, 7):
                direct = ladder_select(
                    DamsInstance(universe, list(hist), target, c=2.0, ell=2),
                    rng=random.Random(seed),
                )
                response = service.submit_wait(
                    SelectRequest(
                        request_id=f"{target}:{seed}", target=target,
                        c=2.0, ell=2, mode="ladder", seed=seed,
                    ),
                    60.0,
                )
                assert response.status == "ok", response.detail
                assert sorted(response.tokens) == sorted(direct.result.tokens)
                assert response.rung == direct.rung
                assert response.claimed_c == direct.claimed_c
                assert response.claimed_ell == direct.claimed_ell


def test_warm_batch_results_equal_cold_single_results():
    """One warm batch answers exactly like N cold one-shot services."""
    universe = fig4_universe()
    hist = seeded_history(universe)
    cold = {}
    for target in TARGETS:
        with SelectionService(universe, hist) as one_shot:
            cold[target] = one_shot.submit_wait(
                SelectRequest(
                    request_id=target, target=target, c=2.0, ell=2,
                    mode="exact",
                ),
                60.0,
            )
    batched = SelectionService(
        universe, hist, ServiceConfig(max_batch=len(TARGETS))
    )
    pendings = [
        batched.submit(
            SelectRequest(
                request_id=target, target=target, c=2.0, ell=2, mode="exact"
            )
        )
        for target in TARGETS
    ]
    batched.start()
    try:
        warm = {p.request.request_id: p.wait(60.0) for p in pendings}
    finally:
        batched.stop()
    batch_ids = {response.batch_id for response in warm.values()}
    assert len(batch_ids) == 1  # genuinely one micro-batch
    for target in TARGETS:
        assert warm[target].status == cold[target].status == "ok"
        assert sorted(warm[target].tokens) == sorted(cold[target].tokens)
        assert (
            warm[target].candidates_checked
            == cold[target].candidates_checked
        )


def test_socket_round_trip_matches_direct():
    universe = fig4_universe()
    hist = seeded_history(universe)
    direct = bfs_select(
        DamsInstance(universe, list(hist), "t06", c=2.0, ell=2)
    )
    with SelectionService(universe, hist) as service:
        ready = threading.Event()
        path = "/tmp/repro-eqtest.sock"
        server = threading.Thread(
            target=serve_socket, args=(service, path, ready), daemon=True
        )
        server.start()
        assert ready.wait(5.0)
        with ServiceClient(path) as client:
            response = client.select(target="t06", c=2.0, ell=2, mode="exact")
            assert response.status == "ok"
            assert sorted(response.tokens) == sorted(direct.ring.tokens)
            assert response.candidates_checked == direct.candidates_checked
            client.shutdown()
        server.join(timeout=5.0)
        assert not server.is_alive()


def test_stdio_subprocess_round_trip_matches_direct():
    """The full `serve` CLI path: JSONL in, byte-identical tokens out."""
    tokens, hts, seed = 14, 6, 3
    universe = fig4_universe(tokens, hts, seed)
    lines = [
        json.dumps(
            {
                "op": "select", "id": target, "target": target,
                "c": 2.0, "ell": 2, "mode": "exact",
            }
        )
        for target in TARGETS
    ]
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--tokens", str(tokens), "--hts", str(hts), "--seed", str(seed),
        ],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )
    assert completed.returncode == 0, completed.stderr
    responses = [json.loads(line) for line in completed.stdout.splitlines()]
    assert len(responses) == len(TARGETS)
    for payload in responses:
        # The serve snapshot has no ring history, so compare against a
        # history-free direct instance.
        direct = bfs_select(
            DamsInstance(universe, [], payload["id"], c=2.0, ell=2)
        )
        assert payload["status"] == "ok"
        assert payload["tokens"] == sorted(direct.ring.tokens)
        assert payload["candidates_checked"] == direct.candidates_checked
