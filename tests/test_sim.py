"""Tests for the longitudinal economy simulation."""


from repro.sim import Economy, EconomyConfig


class TestEconomyBasics:
    def test_single_tick(self):
        economy = Economy(EconomyConfig(seed=1))
        report = economy.tick()
        assert report.tick == 0
        assert report.minted_tokens == 6
        assert report.attempted_spends <= 2

    def test_run_many_ticks(self):
        economy = Economy(EconomyConfig(seed=1))
        reports = economy.run(5)
        assert [r.tick for r in reports] == list(range(5))
        assert economy.chain.height == 10  # mint block + mined block per tick

    def test_rings_accumulate_once_each(self):
        economy = Economy(EconomyConfig(seed=1))
        reports = economy.run(6)
        total_spends = sum(r.successful_spends for r in reports)
        assert len(list(economy.chain.rings)) == total_spends

    def test_no_deanonymization_under_diversity_policy(self):
        economy = Economy(EconomyConfig(seed=2, ell=3))
        economy.run(6)
        assert economy.deanonymization_rate() == 0.0

    def test_anonymity_metrics_available(self):
        economy = Economy(EconomyConfig(seed=3))
        economy.run(4)
        metrics = economy.anonymity()
        assert metrics is not None
        assert metrics.ring_count > 0
        assert metrics.mean_effective_size > 1

    def test_empty_economy_metrics(self):
        economy = Economy(EconomyConfig(seed=0, spends_per_tick=0))
        economy.tick()
        assert economy.anonymity() is None
        assert economy.deanonymization_rate() == 0.0

    def test_deterministic_per_seed(self):
        a = Economy(EconomyConfig(seed=7))
        b = Economy(EconomyConfig(seed=7))
        reports_a = a.run(4)
        reports_b = b.run(4)
        assert reports_a == reports_b

    def test_double_spend_guard_live(self):
        # The sim attaches real key images; a target is never spent twice.
        economy = Economy(EconomyConfig(seed=4))
        economy.run(8)
        rings = list(economy.chain.rings)
        assert len(rings) == len({r.rid for r in rings})


class TestPolicies:
    def test_game_policy_produces_smaller_or_equal_rings(self):
        progressive = Economy(EconomyConfig(seed=5, algorithm="progressive"))
        game = Economy(EconomyConfig(seed=5, algorithm="game"))
        progressive.run(6)
        game.run(6)
        mean_p = _mean_ring_size(progressive)
        mean_g = _mean_ring_size(game)
        assert mean_g <= mean_p + 0.5

    def test_relaxation_disabled_drops_spends(self):
        strict = Economy(
            EconomyConfig(seed=6, ell=5, relax_on_failure=False)
        )
        relaxed = Economy(
            EconomyConfig(seed=6, ell=5, relax_on_failure=True)
        )
        strict.run(3)
        relaxed.run(3)
        strict_ok = sum(r.successful_spends for r in strict.reports)
        relaxed_ok = sum(r.successful_spends for r in relaxed.reports)
        assert relaxed_ok >= strict_ok


def _mean_ring_size(economy: Economy) -> float:
    rings = list(economy.chain.rings)
    if not rings:
        return 0.0
    return sum(len(r) for r in rings) / len(rings)
