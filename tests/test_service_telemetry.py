"""The service telemetry contract, in three parts.

1. **Determinism** — under :class:`~repro.obs.clock.ManualClock` the
   lifecycle histograms have *exactly* assertable quantiles: the
   instrument reads the clock once per mark (admitted, batch start,
   request start, request finish) and marks finish before the pending
   slot resolves, so a serialized submitter drives a fixed read
   schedule.
2. **Equivalence** — telemetry observes the daemon, it never changes
   what the daemon answers: responses are byte-identical with
   telemetry on vs off (modulo the measured ``elapsed`` field, which
   is wall-clock in both configurations).
3. **Cost** — the per-request instrument is priced like
   ``tests/test_obs_overhead.py`` prices the event guards: the marks
   must cost well under the issue's 5% bench budget against even a
   trivial warm request.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

from repro.obs.clock import ManualClock
from repro.service import (
    SelectionService,
    ServiceConfig,
    serve_socket,
)
from repro.service.protocol import encode
from repro.service.server import handle_line
from repro.service.telemetry import ServiceTelemetry, format_stats, format_top

from tests.test_service import history, request, small_universe

SRC = Path(__file__).resolve().parent.parent / "src"

CHAOS_PLAN = {
    "version": 1,
    "seed": 0,
    "faults": [{"site": "bfs.candidate", "action": "error", "at_hit": 1}],
}


def manual_service(**overrides) -> SelectionService:
    config = ServiceConfig(clock=ManualClock(start=0.0, step=1.0), **overrides)
    return SelectionService(small_universe(), history(), config)


# -- determinism -------------------------------------------------------------


def test_lifecycle_quantiles_are_exact_under_manual_clock():
    """Serialized requests consume a fixed clock-read schedule: the
    admitted->started gap is always 2 steps and started->finished is
    always 1, so every quantile of every histogram is a constant."""
    with manual_service() as service:
        for index in range(5):
            response = service.submit_wait(request(f"r{index}"), 30.0)
            assert response.status == "ok", response.detail
        snap = service.stats()["telemetry"]
    for q in ("p50", "p95", "p99"):
        assert snap["histograms"]["queue_wait_s"][q] == 2.0
        assert snap["histograms"]["solve_s"][q] == 1.0
        assert snap["histograms"]["request_s"][q] == 3.0
        assert snap["histograms"]["batch_size"][q] == 1.0
    assert snap["histograms"]["request_s"]["count"] == 5
    assert snap["counters"]["requests"]["total"] == 5
    assert snap["counters"]["status.ok"]["total"] == 5


def test_stats_telemetry_snapshot_is_reproducible_across_runs():
    def run() -> dict:
        with manual_service() as service:
            for index in range(3):
                service.submit_wait(request(f"r{index}"), 30.0)
            snap = service.stats()
        # Drop the wall-clock-free but run-scoped id-less gauges that
        # depend on how many reads the stats call itself consumed: none
        # do — the clock is the only time source — so the whole payload
        # must reproduce.
        return snap

    first, second = run(), run()
    assert first["telemetry"] == second["telemetry"]
    assert first["resilience"] == second["resilience"]


# -- equivalence -------------------------------------------------------------


def serve_all(telemetry: bool, requests) -> list[str]:
    config = ServiceConfig(telemetry=telemetry)
    with SelectionService(small_universe(), history(), config) as service:
        responses = [service.submit_wait(req, 30.0) for req in requests]
    # `elapsed` is measured wall time in *both* configurations;
    # everything else must match byte for byte.
    return [
        encode(replace(resp, elapsed=0.0).to_dict()) for resp in responses
    ]


def test_responses_are_byte_identical_with_telemetry_on_and_off():
    def workload():
        return [
            request("a", target="t3"),
            request("b", target="t4"),
            request("a2", target="t3"),  # memo hit
            request("chaos", target="t5", fault_plan=CHAOS_PLAN),
            request("ladder", target="t6", mode="ladder"),
        ]

    assert serve_all(True, workload()) == serve_all(False, workload())


def test_disabling_telemetry_keeps_the_flat_stats_contract():
    with manual_service() as enabled:
        enabled.submit_wait(request("r1"), 30.0)
        rich = enabled.stats()
    config = ServiceConfig(telemetry=False)
    with SelectionService(small_universe(), history(), config) as disabled:
        disabled.submit_wait(request("r1"), 30.0)
        flat = disabled.stats()
    assert "telemetry" not in flat
    assert "resilience" not in flat
    # The enriched payload is a strict superset of the flat one.
    assert set(flat) <= set(rich)
    for key in ("epoch", "rings", "offered", "refused"):
        assert rich[key] == flat[key]


# -- resilience surfacing ----------------------------------------------------


def test_stats_surfaces_resilience_counters_from_the_solver():
    with manual_service() as service:
        ok = service.submit_wait(request("r1"), 30.0)
        chaos = service.submit_wait(
            request("chaos", target="t4", fault_plan=CHAOS_PLAN), 30.0
        )
        stats = service.stats()
    assert ok.status == "ok"
    assert chaos.status == "error" and chaos.code == "fault_injected"
    resilience = stats["resilience"]
    assert resilience["faults_injected"] >= 1
    assert resilience["rung_served"] == {"exact": 1}
    for key in ("retries", "worker_lost", "checkpoints", "degradations"):
        assert resilience[key] == 0


# -- health ------------------------------------------------------------------


def test_health_transitions_ready_degraded_draining():
    with manual_service() as service:
        assert service.health()["health"] == "ready"
        service.submit_wait(
            request("chaos", fault_plan=CHAOS_PLAN), 30.0
        )
        degraded = service.health()
        assert degraded["health"] == "degraded"
        assert any(
            "errors.fault_injected" in reason for reason in degraded["reasons"]
        )
        service.queue.close()
        assert service.health()["health"] == "draining"


def test_health_without_telemetry_still_answers():
    config = ServiceConfig(telemetry=False)
    with SelectionService(small_universe(), history(), config) as service:
        probe = service.health()
        assert probe["health"] == "ready"
        assert probe["reasons"] == []
        service.queue.close()
        assert service.health()["health"] == "draining"


# -- the wire ops ------------------------------------------------------------


def test_metrics_op_returns_prometheus_text():
    with manual_service() as service:
        service.submit_wait(request("r1"), 30.0)
        line, keep_going = handle_line(
            service, json.dumps({"op": "metrics", "id": "m1"})
        )
    assert keep_going
    payload = json.loads(line)
    assert payload["status"] == "ok"
    assert payload["content_type"].startswith("text/plain; version=0.0.4")
    body = payload["body"]
    assert "# TYPE repro_service_request_s histogram" in body
    assert "repro_service_requests_total 1" in body
    assert 'repro_service_request_s_bucket{le="+Inf"} 1' in body
    assert "repro_service_request_s_p99 3" in body
    assert "repro_solver" in body  # solver/legacy counters render too


def test_health_op_over_the_wire():
    with manual_service() as service:
        line, keep_going = handle_line(
            service, json.dumps({"op": "health", "id": "h1"})
        )
    assert keep_going
    payload = json.loads(line)
    assert payload["status"] == "ok"
    assert payload["health"] == "ready"
    assert payload["id"] == "h1"


def test_metrics_op_without_telemetry_degrades_gracefully():
    config = ServiceConfig(telemetry=False)
    with SelectionService(small_universe(), history(), config) as service:
        service.submit_wait(request("r1"), 30.0)
        line, _ = handle_line(service, json.dumps({"op": "metrics", "id": "m"}))
    payload = json.loads(line)
    assert payload["status"] == "ok"
    assert "repro_service_requests_total 1" in payload["body"]


# -- drain summary and the pretty printers -----------------------------------


def test_drain_summary_reports_served_p99_and_memo_rate():
    with manual_service() as service:
        service.submit_wait(request("r1"), 30.0)
        service.submit_wait(request("r1b"), 30.0)  # identical -> memo hit
        summary = service.drain_summary()
    assert summary is not None
    assert "served 2 request(s)" in summary
    assert "2 ok" in summary
    assert "p99 request 3000.0ms" in summary
    assert "memo hit rate 50.0%" in summary


def test_drain_summary_is_none_when_disabled():
    config = ServiceConfig(telemetry=False)
    with SelectionService(small_universe(), history(), config) as service:
        assert service.drain_summary() is None


def test_format_stats_and_top_render_the_enriched_payload():
    with manual_service() as service:
        service.submit_wait(request("r1"), 30.0)
        stats = service.stats()
        health = service.health()
    rendered = format_stats(stats)
    assert "== service stats ==" in rendered
    assert "request_s" in rendered
    assert "rung_served" in rendered
    top = format_top(stats, health)
    assert "== repro top ==" in top
    assert "health: ready" in top


# -- the CLI surfaces --------------------------------------------------------


def _serve_args(tokens: int = 12, hts: int = 5) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli", "serve",
        "--tokens", str(tokens), "--hts", str(hts), "--seed", "3",
    ]


def _run_stdio(extra_args: list[str], lines: list[str]):
    return subprocess.run(
        _serve_args() + extra_args,
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


def test_serve_prints_telemetry_summary_on_drain():
    select = {"op": "select", "id": "r1", "target": "t03", "c": 2.0, "ell": 2}
    completed = _run_stdio([], [json.dumps(select)])
    assert completed.returncode == 0, completed.stderr
    assert "telemetry: served 1 request(s)" in completed.stderr
    assert "memo hit rate" in completed.stderr


def test_serve_no_telemetry_omits_the_summary():
    select = {"op": "select", "id": "r1", "target": "t03", "c": 2.0, "ell": 2}
    completed = _run_stdio(["--no-telemetry"], [json.dumps(select)])
    assert completed.returncode == 0, completed.stderr
    assert "telemetry:" not in completed.stderr
    # The original drain line survives unchanged.
    assert "final epoch" in completed.stderr


def test_client_stats_watch_and_top_against_a_live_socket(tmp_path, capsys):
    from repro.cli import main

    path = str(tmp_path / "svc.sock")
    with SelectionService(small_universe(), history()) as service:
        ready = threading.Event()
        server = threading.Thread(
            target=serve_socket, args=(service, path, ready), daemon=True
        )
        server.start()
        assert ready.wait(5.0)

        assert main(["client", "--socket", path, "--target", "t3"]) == 0
        assert main(["client", "--socket", path, "--stats"]) == 0
        assert main(
            ["client", "--socket", path, "--watch", "0.01",
             "--iterations", "2"]
        ) == 0
        assert main(
            ["top", "--socket", path, "--interval", "0.01",
             "--iterations", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("== service stats ==") >= 3  # stats + 2 watch polls
        assert "== repro top ==" in out
        assert "health: ready" in out

        from repro.service import ServiceClient

        with ServiceClient(path) as client:
            client.shutdown()
        server.join(timeout=5.0)
        assert not server.is_alive()


# -- cost --------------------------------------------------------------------


def test_telemetry_marks_cost_under_the_bench_budget():
    """Price the four lifecycle marks against the cheapest request the
    benches actually measure — a warm-cache *solve* (the bench workload
    never replays memoized answers; its requests cost milliseconds).
    The instrument must stay under the issue's 5% margin even against
    this floor."""
    telemetry = ServiceTelemetry()

    class _Ok:
        status = "ok"
        code = None
        rung = "exact"
        degraded = False
        warm_cache = True
        attrs = {"memo": True}

    response = _Ok()
    rounds = 2000
    start = time.perf_counter()
    for _ in range(rounds):
        admitted = telemetry.admitted(0)
        telemetry.batch_started(1, 0)
        started = telemetry.request_started(admitted)
        telemetry.request_finished(response, admitted, started)
    per_request_marks = (time.perf_counter() - start) / rounds

    with SelectionService(small_universe(), history()) as service:
        service.submit_wait(request("warmup"), 30.0)  # builds the caches
        start = time.perf_counter()
        # A distinct target: a real warm-cache solve, no memo replay.
        service.submit_wait(request("warm", target="t4"), 30.0)
        warm_solve = time.perf_counter() - start

    assert per_request_marks < 0.05 * warm_solve, (
        f"telemetry marks cost {per_request_marks * 1e6:.1f}us per request "
        f"vs {warm_solve * 1e6:.1f}us for the cheapest warm solve"
    )
