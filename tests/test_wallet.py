"""Unit tests for the wallet: planning and signing diversity-aware spends."""

import pytest

from repro.chain.blockchain import Blockchain
from repro.chain.errors import ValidationError
from repro.chain.transaction import Transaction
from repro.chain.wallet import Wallet
from repro.crypto.keys import keypair_from_seed


def funded_chain_and_wallets(user_count=4, outputs_per_user=2):
    """A chain whose coinbase outputs are claimed by several wallets."""
    chain = Blockchain(verify_signatures=True)
    wallets = [Wallet(name=f"user{i}") for i in range(user_count)]
    keypairs = []
    owners = []
    for wallet in wallets:
        for _ in range(outputs_per_user):
            keypair = wallet.derive_keypair()
            keypairs.append((wallet, keypair))
            owners.append(keypair.public)
    # Several coinbase transactions so tokens span multiple HTs.
    txs = []
    per_tx = 2
    for index in range(0, len(owners), per_tx):
        txs.append(Transaction(inputs=(), output_count=per_tx, nonce=index))
    chain.append_block(chain.make_block(txs, timestamp=1.0))
    flat = []
    for tx in txs:
        outs = tx.make_outputs(
            owners=owners[len(flat) : len(flat) + tx.output_count]
        )
        flat.extend(outs)
        chain.register_owned_outputs(outs)
    for output, (wallet, keypair) in zip(flat, keypairs):
        wallet.claim_output(output, keypair)
    return chain, wallets


class TestClaiming:
    def test_claim_and_list(self):
        chain, wallets = funded_chain_and_wallets()
        assert len(wallets[0].owned_tokens()) == 2

    def test_claim_wrong_key_rejected(self):
        chain, wallets = funded_chain_and_wallets()
        token = wallets[0].owned_tokens()[0]
        output = chain.token(token)
        with pytest.raises(ValidationError):
            wallets[1].claim_output(output, keypair_from_seed("not-the-owner"))

    def test_derive_keypair_unique(self):
        wallet = Wallet(name="w")
        assert (
            wallet.derive_keypair().public.encode()
            != wallet.derive_keypair().public.encode()
        )


class TestSpending:
    def test_plan_requires_ownership(self):
        chain, wallets = funded_chain_and_wallets()
        foreign = wallets[1].owned_tokens()[0]
        with pytest.raises(ValidationError):
            wallets[0].plan_spend(chain, foreign, c=2.0, ell=2)

    def test_plan_contains_target(self):
        chain, wallets = funded_chain_and_wallets()
        token = wallets[0].owned_tokens()[0]
        plan = wallets[0].plan_spend(chain, token, c=2.0, ell=2)
        assert token in plan.selection.tokens
        assert plan.selection.size >= 2

    def test_end_to_end_spend_accepted(self):
        chain, wallets = funded_chain_and_wallets()
        token = wallets[0].owned_tokens()[0]
        plan = wallets[0].plan_spend(chain, token, c=2.0, ell=2)
        tx = wallets[0].sign_spend(chain, plan)
        chain.append_block(chain.make_block([tx], timestamp=2.0))
        assert chain.height == 2
        # The ring is now visible on chain with its claimed requirement.
        ring = list(chain.rings)[-1]
        assert ring.tokens == plan.selection.tokens
        assert ring.c == 2.0

    def test_double_spend_detected(self):
        chain, wallets = funded_chain_and_wallets()
        token = wallets[0].owned_tokens()[0]
        plan = wallets[0].plan_spend(chain, token, c=2.0, ell=2)
        tx1 = wallets[0].sign_spend(chain, plan, nonce=0)
        chain.append_block(chain.make_block([tx1], timestamp=2.0))
        tx2 = wallets[0].sign_spend(chain, plan, nonce=1)
        from repro.chain.errors import DoubleSpendError

        with pytest.raises(DoubleSpendError):
            chain.append_block(chain.make_block([tx2], timestamp=3.0))

    def test_selector_choice_respected(self):
        chain, wallets = funded_chain_and_wallets()
        token = wallets[0].owned_tokens()[0]
        plan = wallets[0].plan_spend(chain, token, c=2.0, ell=2, algorithm="game")
        assert plan.selection.algorithm == "game"
